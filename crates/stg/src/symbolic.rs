//! BDD-based symbolic state-space exploration.
//!
//! The DAC'96 paper attributes petrify's capacity to handle "extremely large
//! state graphs" to the symbolic (OBDD) representation of the state graph.
//! This module provides that engine, built around the fused
//! relational-product operator [`bdd::BddManager::and_exists`]:
//!
//! * **Interleaved variable encoding** — every state variable (one per
//!   place, plus one per signal for code-encoded spaces) owns an adjacent
//!   pair of BDD variables: the *current* copy at index `2i` and the *next*
//!   copy at `2i + 1`.  Interleaving keeps the per-transition relations
//!   linear-sized, and renaming next back to current is a plain
//!   order-preserving shift ([`bdd::BddManager::unprime`]).
//! * **Partitioned transition relations** — each transition contributes a
//!   small relation `enabled(x) ∧ next-values(x′) ∧ frame(x, x′)` whose
//!   support is limited to the variables the transition actually touches.
//!   Relations are grouped into *disjunctive clusters* per signal (dummy
//!   transitions stay individual), so one image step per cluster replaces
//!   the per-transition and/exists/and/or chain.
//! * **Frontier-driven reachability** — the fixpoint images only the states
//!   discovered in the previous step (`frontier = img \ reachable`) instead
//!   of re-imaging the whole reachable set each iteration.  The monolithic
//!   variant is kept selectable for equivalence testing and comparison.
//!
//! The symbolic engine is used by the Table 1 harness to count state spaces
//! far beyond what explicit enumeration can touch (e.g. `4^24` markings for
//! a 24-wide parallel composition) and to detect the presence of encoding
//! conflicts without building the explicit graph.

use crate::error::StgError;
use crate::model::{Stg, TransitionLabel};
use crate::signal::Polarity;
use bdd::{Bdd, BddManager, BddStats, Budget, FxHashMap, VarId};
use petri::TransId;

/// How the reachability fixpoint feeds each image step.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ReachabilityStrategy {
    /// Image only the states discovered in the previous step.  This is the
    /// default: every state is imaged exactly once, so wide shallow state
    /// spaces converge with far less BDD traffic.
    #[default]
    FrontierBfs,
    /// Image the entire reachable set every iteration (the textbook least
    /// fixpoint).  Kept for equivalence testing and as a baseline.
    MonolithicBfs,
}

/// Configuration for the fallible reachability entry points
/// ([`Stg::try_symbolic_state_space`] and friends).
///
/// The default is the frontier strategy, the default iteration cap
/// (`4 × places`), and no resource budget.
#[derive(Clone, Debug, Default)]
pub struct ReachabilityConfig {
    /// How each image step is fed.
    pub strategy: ReachabilityStrategy,
    /// Cap on breadth-first image rounds; `None` uses `4 × places`.
    pub max_iterations: Option<usize>,
    /// Shared resource budget charged for every BDD node the fixpoint
    /// allocates and checked between image rounds.
    pub budget: Option<Budget>,
    /// Stage label reported by budget trips during the fixpoint; `None`
    /// labels them `"reachability"`.  Callers running reachability as a
    /// sub-step of a larger governed phase (the CSC solver's candidate
    /// verification) override this so trips name the phase the user sees.
    pub stage: Option<&'static str>,
}

impl ReachabilityConfig {
    /// A config differing from the default only by its budget.
    pub fn with_budget(budget: Budget) -> Self {
        ReachabilityConfig { budget: Some(budget), ..Self::default() }
    }
}

/// A symbolically represented set of reachable markings.
#[derive(Debug)]
pub struct SymbolicStateSpace {
    manager: BddManager,
    reachable: Bdd,
    initial: Bdd,
    num_places: usize,
    num_signals: usize,
    /// Position of each logical state variable (places `0..num_places`,
    /// then signals) in the interleaved BDD variable order.
    pos: Vec<usize>,
    /// `true` when the fixpoint completed without hitting the iteration cap.
    pub converged: bool,
    /// Number of image rounds the fixpoint performed.
    pub iterations: usize,
}

/// One enabling/update branch of an STG transition, expressed over the
/// *current* BDD variables of the [`SymbolicStateSpace`] it was derived
/// from.
///
/// A rising or falling edge contributes exactly one branch; a toggle edge
/// contributes two (one per pre-value of its code bit); a dummy transition
/// contributes one branch that touches no code variable.  Because the next
/// state differs from the current one only on [`Self::pinned`]'s variables
/// — and there to fixed constants — downstream analyses (image, crossing
/// and border computations in the symbolic CSC solver) never need the
/// next-state variable copies: the image of a state set `A` under a branch
/// is `(∃ changed. A ∧ enabled) ∧ pinned`, and "the target satisfies `Q`"
/// is the cofactor of `Q` at the pinned literals.
#[derive(Clone, Debug)]
pub struct TransitionBranch {
    /// The net transition this branch belongs to.
    pub trans: TransId,
    /// Literals that must hold for the branch to fire: every preset place
    /// marked, plus the signal's pre-value for a coded edge.
    pub enabled: Vec<(VarId, bool)>,
    /// Values the changed variables take after firing — cleared places to 0,
    /// newly marked places to 1, the signal's code bit to its post-value.
    /// Variables outside this list keep their current value.
    pub pinned: Vec<(VarId, bool)>,
}

/// One enabling/update branch of a transition over *state-variable indices*
/// (places `0..num_places`, then signals) — the encoding-independent form
/// shared by the reachability engine and [`SymbolicStateSpace::
/// transition_branches`].
struct RawBranch {
    trans: TransId,
    enabled: Vec<(usize, bool)>,
    changed: Vec<usize>,
    pinned: Vec<(usize, bool)>,
}

/// Enumerates the firing branches of every transition.  `with_codes` adds
/// the per-signal code variables (indices `num_places..`) to the coded
/// edges; without it every label is treated like a dummy.
fn enumerate_branches(stg: &Stg, with_codes: bool) -> Vec<RawBranch> {
    let net = stg.net();
    let num_places = net.num_places();
    let mut branches = Vec::new();
    for t in 0..net.num_transitions() {
        let t_id = TransId::from(t);
        let pre: Vec<usize> = net.preset(t_id).iter().map(|p| p.index()).collect();
        let post: Vec<usize> = net.postset(t_id).iter().map(|p| p.index()).collect();
        let cleared: Vec<usize> = pre.iter().copied().filter(|v| !post.contains(v)).collect();
        let set: Vec<usize> = post.iter().copied().filter(|v| !pre.contains(v)).collect();
        let signal_state_var = if with_codes {
            match stg.label(t_id) {
                TransitionLabel::Edge { signal, polarity } => {
                    Some((num_places + signal.index(), polarity))
                }
                TransitionLabel::Dummy => None,
            }
        } else {
            None
        };
        let enabled_base: Vec<(usize, bool)> = pre.iter().map(|&p| (p, true)).collect();
        let mut changed_base: Vec<usize> = cleared.clone();
        changed_base.extend(&set);
        let mut pinned_base: Vec<(usize, bool)> = Vec::new();
        pinned_base.extend(cleared.iter().map(|&p| (p, false)));
        pinned_base.extend(set.iter().map(|&p| (p, true)));
        // (signal pre-value, signal post-value) per branch; a toggle fires
        // from either value and lands on the opposite one.
        type CodeLit = Option<(usize, bool)>;
        let code_branches: Vec<(CodeLit, CodeLit)> = match signal_state_var {
            Some((sv, Polarity::Rise)) => vec![(Some((sv, false)), Some((sv, true)))],
            Some((sv, Polarity::Fall)) => vec![(Some((sv, true)), Some((sv, false)))],
            Some((sv, Polarity::Toggle)) => {
                vec![(Some((sv, false)), Some((sv, true))), (Some((sv, true)), Some((sv, false)))]
            }
            None => vec![(None, None)],
        };
        for (pre_lit, post_lit) in code_branches {
            let mut enabled = enabled_base.clone();
            let mut changed = changed_base.clone();
            let mut pinned = pinned_base.clone();
            if let Some((sv, value)) = pre_lit {
                enabled.push((sv, value));
                changed.push(sv);
            }
            if let Some((sv, value)) = post_lit {
                pinned.push((sv, value));
            }
            changed.sort_unstable();
            changed.dedup();
            branches.push(RawBranch { trans: t_id, enabled, changed, pinned });
        }
    }
    branches
}

/// One disjunctive cluster of transition relations plus its quantifier.
struct Cluster {
    /// `∨` over the member transitions of `enabled ∧ pins ∧ frame`.
    relation: Bdd,
    /// Positive cube of the *current* copies of every state variable some
    /// member changes — the set `and_exists` quantifies away.
    quant: Bdd,
}

impl Stg {
    /// Computes the reachable markings symbolically (place variables only).
    ///
    /// `max_iterations` bounds the number of breadth-first image steps; the
    /// default (`None`) allows `4 × places` steps, which is ample for the
    /// benchmark suite.
    pub fn symbolic_state_space(&self, max_iterations: Option<usize>) -> SymbolicStateSpace {
        infallible(self.symbolic_space_inner(
            false,
            0,
            ReachabilityStrategy::default(),
            max_iterations,
            None,
        ))
    }

    /// [`Self::symbolic_state_space`] with an explicit fixpoint strategy.
    pub fn symbolic_state_space_with(
        &self,
        strategy: ReachabilityStrategy,
        max_iterations: Option<usize>,
    ) -> SymbolicStateSpace {
        infallible(self.symbolic_space_inner(false, 0, strategy, max_iterations, None))
    }

    /// Fallible reachability over the place variables: honours the budget in
    /// `config` and reports a typed [`StgError::NotConverged`] when the
    /// iteration cap is hit, instead of silently returning a truncated set.
    pub fn try_symbolic_state_space(
        &self,
        config: &ReachabilityConfig,
    ) -> Result<SymbolicStateSpace, StgError> {
        if let Some(budget) = &config.budget {
            budget.set_stage(config.stage.unwrap_or("reachability"));
        }
        let space = self.symbolic_space_inner(
            false,
            0,
            config.strategy,
            config.max_iterations,
            config.budget.as_ref(),
        )?;
        ensure_converged(space)
    }

    /// Fallible reachability over the (marking, code) pairs; see
    /// [`Self::try_symbolic_state_space`].
    pub fn try_symbolic_encoded_state_space(
        &self,
        initial_code: u64,
        config: &ReachabilityConfig,
    ) -> Result<SymbolicStateSpace, StgError> {
        if let Some(budget) = &config.budget {
            budget.set_stage(config.stage.unwrap_or("reachability"));
        }
        let space = self.symbolic_space_inner(
            true,
            initial_code,
            config.strategy,
            config.max_iterations,
            config.budget.as_ref(),
        )?;
        ensure_converged(space)
    }

    /// Computes the reachable (marking, code) pairs symbolically.
    ///
    /// State variables are the places followed by one variable per signal.
    /// `initial_code` gives the signal values in the initial marking (bit
    /// `i` = signal `i`); the benchmark suite starts every signal at 0.
    pub fn symbolic_encoded_state_space(
        &self,
        initial_code: u64,
        max_iterations: Option<usize>,
    ) -> SymbolicStateSpace {
        infallible(self.symbolic_space_inner(
            true,
            initial_code,
            ReachabilityStrategy::default(),
            max_iterations,
            None,
        ))
    }

    /// [`Self::symbolic_encoded_state_space`] with an explicit strategy.
    pub fn symbolic_encoded_state_space_with(
        &self,
        initial_code: u64,
        strategy: ReachabilityStrategy,
        max_iterations: Option<usize>,
    ) -> SymbolicStateSpace {
        infallible(self.symbolic_space_inner(true, initial_code, strategy, max_iterations, None))
    }

    fn symbolic_space_inner(
        &self,
        with_codes: bool,
        initial_code: u64,
        strategy: ReachabilityStrategy,
        max_iterations: Option<usize>,
        budget: Option<&Budget>,
    ) -> Result<SymbolicStateSpace, StgError> {
        let net = self.net();
        let num_places = net.num_places();
        let num_signals = if with_codes { self.num_signals() } else { 0 };
        // One (current, next) variable pair per state variable, interleaved:
        // the state variable at *position* k of the chosen order lives at
        // BDD variables 2k (current) and 2k+1 (next).
        //
        // State variables are identified by a logical index (places first,
        // then signals) but *positioned* so that every signal sits right
        // next to the places feeding its transitions: a global
        // places-then-signals order would force the BDD to remember the
        // whole marking before reading any code bit, which blows the
        // reachable set up exponentially on wide products of independent
        // components (the very workloads the symbolic engine exists for).
        let num_state_vars = num_places + num_signals;
        let pos = if num_places == 0 {
            // Degenerate net: no places to anchor to; keep the logical order.
            (0..num_state_vars).collect()
        } else {
            let mut anchor = vec![num_places - 1; num_signals];
            for t in 0..net.num_transitions() {
                let t_id = TransId::from(t);
                if let TransitionLabel::Edge { signal, .. } = self.label(t_id) {
                    if signal.index() < num_signals {
                        if let Some(min_pre) = net.preset(t_id).iter().map(|p| p.index()).min() {
                            let a = &mut anchor[signal.index()];
                            *a = (*a).min(min_pre);
                        }
                    }
                }
            }
            let mut signals_after: Vec<Vec<usize>> = vec![Vec::new(); num_places];
            for (s, &a) in anchor.iter().enumerate() {
                signals_after[a].push(s);
            }
            let mut pos = vec![0usize; num_state_vars];
            let mut k = 0;
            for p in 0..num_places {
                pos[p] = k;
                k += 1;
                for &s in &signals_after[p] {
                    pos[num_places + s] = k;
                    k += 1;
                }
            }
            debug_assert_eq!(k, num_state_vars);
            pos
        };
        let current = |state_var: usize| (2 * pos[state_var]) as VarId;
        let next = |state_var: usize| (2 * pos[state_var] + 1) as VarId;
        // Pre-size the arena and unique table: reachability fixpoints build
        // nodes monotonically, and sizing up front avoids growth rehashing
        // in the middle of the image iteration.
        let mut m = BddManager::with_capacity(
            (2 * num_state_vars).max(1),
            (num_state_vars.max(8) * 1024).min(1 << 20),
        );
        if let Some(budget) = budget {
            m.set_budget(budget.clone());
        }

        // Initial state cube over the current-copy variables.
        let mut initial_lits: Vec<(VarId, bool)> = (0..num_places)
            .map(|p| (current(p), net.initial_marking().is_marked(petri::PlaceId::from(p))))
            .collect();
        if with_codes {
            for s in 0..num_signals {
                // Signals past the width of the `u64` seed start at 0; wide
                // designs (>64 signals) are exactly what the symbolic engine
                // exists for, so the shift must not overflow.
                let bit = s < 64 && (initial_code >> s) & 1 != 0;
                initial_lits.push((current(num_places + s), bit));
            }
        }
        let initial = m.cube_of(&initial_lits);

        // --- Build the partitioned transition relations -------------------
        //
        // Each transition branch yields: the literals enabling it (marked
        // preset, plus the signal's pre-value for a coded edge), the state
        // variables it changes, and the next-copy literals pinning their
        // post-values.  A toggle edge (`a~`) flips its code bit, so it
        // expands into one branch per current bit value.  The enumeration
        // itself is shared with [`SymbolicStateSpace::transition_branches`]
        // so the two views of the firing rule cannot drift apart.
        struct TransBranch {
            enabled: Vec<(VarId, bool)>,
            changed: Vec<usize>,
            pinned: Vec<(VarId, bool)>,
        }
        // Branches grouped into disjunctive clusters: one cluster per
        // signal, one per dummy transition.
        let mut members: Vec<Vec<TransBranch>> = Vec::new();
        let mut cluster_of_signal: FxHashMap<usize, usize> = FxHashMap::default();
        for raw in enumerate_branches(self, with_codes) {
            let slot = match self.label(raw.trans) {
                TransitionLabel::Edge { signal, .. } => {
                    *cluster_of_signal.entry(signal.index()).or_insert_with(|| {
                        members.push(Vec::new());
                        members.len() - 1
                    })
                }
                TransitionLabel::Dummy => {
                    members.push(Vec::new());
                    members.len() - 1
                }
            };
            members[slot].push(TransBranch {
                enabled: raw.enabled.iter().map(|&(sv, v)| (current(sv), v)).collect(),
                changed: raw.changed,
                pinned: raw.pinned.iter().map(|&(sv, v)| (next(sv), v)).collect(),
            });
        }

        // Frame condition x′ᵥ ↔ xᵥ, interned once per state variable.
        let mut frame_iffs: Vec<Option<Bdd>> = vec![None; num_state_vars];
        let mut frame_of = |m: &mut BddManager, sv: usize| {
            *frame_iffs[sv].get_or_insert_with(|| {
                let cur = m.var(current(sv));
                let nxt = m.var(next(sv));
                m.iff(cur, nxt)
            })
        };
        let clusters: Vec<Cluster> = members
            .into_iter()
            .filter(|branches| !branches.is_empty())
            .map(|branches| {
                // The cluster quantifies the union of its members' changed
                // sets, so members that leave one of those variables alone
                // need an explicit frame conjunct to carry its value across.
                let mut changed_union: Vec<usize> =
                    branches.iter().flat_map(|b| b.changed.iter().copied()).collect();
                changed_union.sort_unstable();
                changed_union.dedup();
                let mut relation = m.bottom();
                for branch in &branches {
                    let mut lits = branch.enabled.clone();
                    lits.extend(&branch.pinned);
                    let mut rel = m.cube_of(&lits);
                    for &sv in changed_union.iter().rev() {
                        if !branch.changed.contains(&sv) {
                            let frame = frame_of(&mut m, sv);
                            rel = m.and(rel, frame);
                        }
                    }
                    relation = m.or(relation, rel);
                }
                let quant_vars: Vec<VarId> = changed_union.iter().map(|&sv| current(sv)).collect();
                let quant = m.quant_cube(&quant_vars);
                Cluster { relation, quant }
            })
            .collect();

        // --- Fixpoint ------------------------------------------------------
        let limit = max_iterations.unwrap_or(4 * num_places.max(8));
        let mut reachable = initial;
        let mut frontier = initial;
        let mut converged = false;
        let mut iterations = 0;
        // The relation build above may already have tripped the budget;
        // surface that before imaging anything.
        if budget.is_some() {
            m.check_budget()?;
        }
        for _ in 0..limit {
            let from = match strategy {
                ReachabilityStrategy::FrontierBfs => frontier,
                ReachabilityStrategy::MonolithicBfs => reachable,
            };
            // One fused relational product per cluster: conjoin with the
            // cluster relation and quantify the current copies in a single
            // pass, then shift the next copies back down.
            let mut image = m.bottom();
            for cluster in &clusters {
                let step = m.and_exists_with(from, cluster.relation, cluster.quant);
                if step.is_false() {
                    continue;
                }
                let step = m.unprime(step);
                image = m.or(image, step);
            }
            iterations += 1;
            // One budget check per image round: flushes the batched node
            // charges and samples the deadline, and catches any poison an
            // in-round trip left behind before the truncated image is
            // mistaken for a fixpoint.
            if budget.is_some() {
                m.check_budget()?;
            }
            let fresh = m.and_not(image, reachable);
            if fresh.is_false() {
                converged = true;
                break;
            }
            reachable = m.or(reachable, fresh);
            frontier = fresh;
        }

        Ok(SymbolicStateSpace {
            manager: m,
            reachable,
            initial,
            num_places,
            num_signals,
            pos,
            converged,
            iterations,
        })
    }
}

/// Unwraps a budget-free reachability result.  Internal invariant: the inner
/// fixpoint only fails through its budget, so with no budget attached the
/// result is always `Ok`.
fn infallible(result: Result<SymbolicStateSpace, StgError>) -> SymbolicStateSpace {
    result.expect("reachability without a budget cannot fail")
}

/// Maps a truncated fixpoint to the typed diagnostic the fallible entry
/// points promise.
fn ensure_converged(space: SymbolicStateSpace) -> Result<SymbolicStateSpace, StgError> {
    if space.converged {
        Ok(space)
    } else {
        Err(StgError::NotConverged { iterations: space.iterations })
    }
}

impl SymbolicStateSpace {
    /// Number of state variables (places plus code signals); the manager
    /// holds twice as many BDD variables (a current and a next copy each).
    fn num_state_vars(&self) -> usize {
        self.num_places + self.num_signals
    }

    /// Number of reachable markings (or marking/code pairs), as an exact
    /// count saturating at `u128::MAX`.
    pub fn state_count(&self) -> u128 {
        let extra = self.num_state_vars() as u32;
        if self.manager.num_vars() >= 128 {
            // The manager counts in floating point beyond 128 variables;
            // divide out the unconstrained next-state copies there too.
            let approx = self.state_count_f64();
            if approx >= u128::MAX as f64 {
                u128::MAX
            } else {
                approx as u128
            }
        } else {
            // The reachable set never depends on the next-state copies, so
            // the count over all variables is an exact multiple of 2^extra.
            self.manager.sat_count(self.reachable) >> extra
        }
    }

    /// Number of reachable markings as a float (robust beyond 128 places).
    pub fn state_count_f64(&self) -> f64 {
        self.manager.sat_count_f64(self.reachable) / 2f64.powi(self.num_state_vars() as i32)
    }

    /// Number of BDD nodes representing the reachable set — the compression
    /// factor the paper relies on.
    pub fn bdd_size(&self) -> usize {
        self.manager.size(self.reachable)
    }

    /// Node-count and cache statistics of the underlying manager.
    pub fn manager_stats(&self) -> BddStats {
        self.manager.stats()
    }

    /// Returns `true` if the given marking (as a vector of booleans indexed
    /// by place, extended with signal values if the space is code-encoded)
    /// is reachable.
    pub fn contains(&self, assignment: &[bool]) -> bool {
        // Spread the state assignment over the interleaved current copies;
        // the next copies are don't-cares for the reachable set.
        let mut full = vec![false; 2 * self.num_state_vars()];
        for (state_var, &value) in assignment.iter().enumerate() {
            full[2 * self.pos[state_var]] = value;
        }
        self.manager.eval(self.reachable, &full)
    }

    /// Number of place variables.
    pub fn num_places(&self) -> usize {
        self.num_places
    }

    /// Number of signal (code) variables, 0 for a places-only space.
    pub fn num_signals(&self) -> usize {
        self.num_signals
    }

    /// The reachable set as a BDD over the *current* copies of the state
    /// variables (the next copies are unconstrained).
    pub fn reachable(&self) -> Bdd {
        self.reachable
    }

    /// Shared access to the manager that owns [`Self::reachable`].
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// Mutable access to the manager, for downstream symbolic analyses
    /// (projection, cover extraction) that build further BDDs over the
    /// reachable set.
    pub fn manager_mut(&mut self) -> &mut BddManager {
        &mut self.manager
    }

    /// The manager variable holding the *current* value of place `place`.
    pub fn current_var_of_place(&self, place: usize) -> VarId {
        assert!(place < self.num_places, "place {place} out of range");
        (2 * self.pos[place]) as VarId
    }

    /// The manager variable holding the *current* value of signal `signal`
    /// (only meaningful for code-encoded spaces).
    pub fn current_var_of_signal(&self, signal: usize) -> VarId {
        assert!(signal < self.num_signals, "signal {signal} out of range");
        (2 * self.pos[self.num_places + signal]) as VarId
    }

    /// The initial state as a cube over the *current* variable copies (the
    /// initial marking, extended with the seeded signal values for a
    /// code-encoded space).
    pub fn initial_state(&self) -> Bdd {
        self.initial
    }

    /// The firing branches of every transition of `stg`, expressed over this
    /// space's *current* variable copies (see [`TransitionBranch`]).
    ///
    /// `stg` must be the model the space was built from; the branch
    /// enumeration is the exact one the reachability engine used, so images
    /// computed from these branches agree with [`Self::reachable`].
    pub fn transition_branches(&self, stg: &Stg) -> Vec<TransitionBranch> {
        assert_eq!(stg.net().num_places(), self.num_places, "space/model mismatch");
        let with_codes = self.num_signals > 0;
        enumerate_branches(stg, with_codes)
            .into_iter()
            .map(|raw| TransitionBranch {
                trans: raw.trans,
                enabled: raw
                    .enabled
                    .iter()
                    .map(|&(sv, v)| ((2 * self.pos[sv]) as VarId, v))
                    .collect(),
                pinned: raw
                    .pinned
                    .iter()
                    .map(|&(sv, v)| ((2 * self.pos[sv]) as VarId, v))
                    .collect(),
            })
            .collect()
    }
}

/// Symbolic encoding-property checks on a code-encoded state space.
impl Stg {
    /// Returns `true` if two distinct reachable markings share the same
    /// binary code (Unique State Coding violated), determined symbolically.
    ///
    /// # Panics
    ///
    /// Panics if reachability does not converge within the default iteration
    /// cap (`4 × places`) — an answer computed from a truncated set would be
    /// silently wrong.  Use [`Self::try_symbolic_usc_violation`] to handle
    /// that case as a typed error.
    pub fn symbolic_usc_violation(&self, initial_code: u64) -> bool {
        self.try_symbolic_usc_violation(initial_code, &ReachabilityConfig::default())
            .expect("reachability did not converge within the default iteration cap")
    }

    /// Fallible [`Self::symbolic_usc_violation`]: honours the budget and
    /// reports non-convergence as [`StgError::NotConverged`] instead of
    /// answering from a truncated set.
    pub fn try_symbolic_usc_violation(
        &self,
        initial_code: u64,
        config: &ReachabilityConfig,
    ) -> Result<bool, StgError> {
        let space = self.try_symbolic_encoded_state_space(initial_code, config)?;
        let states = space.state_count_f64();
        let (num_places, num_signals) = (space.num_places, space.num_signals);
        let place_vars: Vec<VarId> =
            (0..num_places).map(|p| space.current_var_of_place(p)).collect();
        let mut m = space.manager;
        // Project onto the code variables: quantify away the current place
        // copies (the next copies are free in `reachable` already).
        let codes = m.exists_many(space.reachable, &place_vars);
        // `codes` depends only on the current signal copies; every other of
        // the 2·(places + signals) manager variables is free.
        let free_vars = (2 * (num_places + num_signals) - num_signals) as i32;
        let distinct_codes = m.sat_count_f64(codes) / 2f64.powi(free_vars);
        if let Some(trip) = m.take_budget_trip() {
            return Err(StgError::Budget(trip));
        }
        Ok(states > distinct_codes + 0.5)
    }

    /// Returns `true` if the STG has a CSC conflict, determined symbolically:
    /// some code is shared by a state that enables a non-input signal and a
    /// state that does not.
    ///
    /// # Panics
    ///
    /// Panics if reachability does not converge within the default iteration
    /// cap; see [`Self::symbolic_usc_violation`].  Use
    /// [`Self::try_symbolic_csc_violation`] for the typed diagnostic.
    pub fn symbolic_csc_violation(&self, initial_code: u64) -> bool {
        self.try_symbolic_csc_violation(initial_code, &ReachabilityConfig::default())
            .expect("reachability did not converge within the default iteration cap")
    }

    /// Fallible [`Self::symbolic_csc_violation`]: honours the budget and
    /// reports non-convergence as [`StgError::NotConverged`] instead of
    /// answering from a truncated set.
    pub fn try_symbolic_csc_violation(
        &self,
        initial_code: u64,
        config: &ReachabilityConfig,
    ) -> Result<bool, StgError> {
        let space = self.try_symbolic_encoded_state_space(initial_code, config)?;
        let num_places = space.num_places;
        let place_vars: Vec<VarId> =
            (0..num_places).map(|p| space.current_var_of_place(p)).collect();
        let mut m = space.manager;
        let reachable = space.reachable;
        for signal in self.non_input_signals() {
            // Enabled(signal) as a function of places: some transition of the
            // signal has all its input places marked.
            let mut enabled = m.bottom();
            for t in self.transitions_of_signal(signal) {
                let lits: Vec<(VarId, bool)> =
                    self.net().preset(t).iter().map(|p| (place_vars[p.index()], true)).collect();
                let cube = m.cube_of(&lits);
                enabled = m.or(enabled, cube);
            }
            let with = m.and(reachable, enabled);
            let without = m.and_not(reachable, enabled);
            let codes_with = m.exists_many(with, &place_vars);
            let codes_without = m.exists_many(without, &place_vars);
            let clash = m.and(codes_with, codes_without);
            if let Some(trip) = m.take_budget_trip() {
                return Err(StgError::Budget(trip));
            }
            if !clash.is_false() {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::ReachabilityStrategy;
    use crate::benchmarks;

    #[test]
    fn symbolic_and_explicit_state_counts_agree() {
        for stg in [
            benchmarks::handshake(),
            benchmarks::pulser(),
            benchmarks::vme_read(),
            benchmarks::parallel_handshakes(3),
            benchmarks::parallelizer(4),
        ] {
            let explicit = stg.state_graph(1_000_000).unwrap().num_states() as u128;
            let space = stg.symbolic_state_space(None);
            assert!(space.converged, "{} did not converge", stg.name());
            assert_eq!(space.state_count(), explicit, "mismatch for {}", stg.name());
        }
    }

    #[test]
    fn frontier_and_monolithic_fixpoints_compute_the_same_space() {
        for stg in [
            benchmarks::handshake(),
            benchmarks::pulser(),
            benchmarks::vme_read(),
            benchmarks::master_read_like(),
            benchmarks::sequencer(4),
            benchmarks::parallel_handshakes(5),
            benchmarks::parallelizer(4),
            benchmarks::pulser_bank(2),
        ] {
            let frontier = stg.symbolic_state_space_with(ReachabilityStrategy::FrontierBfs, None);
            let monolithic =
                stg.symbolic_state_space_with(ReachabilityStrategy::MonolithicBfs, None);
            assert!(frontier.converged, "{}", stg.name());
            assert_eq!(frontier.converged, monolithic.converged, "{}", stg.name());
            assert_eq!(frontier.state_count(), monolithic.state_count(), "{}", stg.name());
            assert_eq!(frontier.bdd_size(), monolithic.bdd_size(), "{}", stg.name());
            assert!(frontier.iterations > 0, "{}", stg.name());
            // The encoded spaces must agree too (exercises toggle/code bits).
            let ef =
                stg.symbolic_encoded_state_space_with(0, ReachabilityStrategy::FrontierBfs, None);
            let em =
                stg.symbolic_encoded_state_space_with(0, ReachabilityStrategy::MonolithicBfs, None);
            assert_eq!(ef.state_count(), em.state_count(), "{}", stg.name());
            assert_eq!(ef.bdd_size(), em.bdd_size(), "{}", stg.name());
        }
    }

    #[test]
    fn symbolic_counts_scale_beyond_explicit_limits() {
        // 4^12 ≈ 16.7 million markings: cheap symbolically, expensive
        // explicitly.
        let stg = benchmarks::parallel_handshakes(12);
        let space = stg.symbolic_state_space(None);
        assert!(space.converged);
        assert_eq!(space.state_count(), 4u128.pow(12));
        assert!(space.bdd_size() < 10_000, "BDD must stay compact");
        let stats = space.manager_stats();
        assert!(stats.cache_hits > 0, "the fixpoint must reuse memoised images");
    }

    #[test]
    fn encoded_space_matches_state_graph() {
        let stg = benchmarks::pulser();
        let space = stg.symbolic_encoded_state_space(0, None);
        assert!(space.converged);
        // Each of the 6 markings has exactly one code, so the encoded space
        // also has 6 states.
        assert_eq!(space.state_count(), 6);
    }

    #[test]
    fn toggle_edges_flip_their_code_bit_symbolically() {
        use crate::{Polarity, SignalKind, StgBuilder};
        // c~ / d+ / c~ / d- ring: the same shape the explicit engine's
        // toggle test uses; c alternates 0,1,0,1 around the cycle.
        let mut b = StgBuilder::new("toggle");
        let c = b.add_signal("c", SignalKind::Output);
        let d = b.add_signal("d", SignalKind::Output);
        let c1 = b.add_edge(c, Polarity::Toggle);
        let dp = b.add_edge(d, Polarity::Rise);
        let c2 = b.add_edge(c, Polarity::Toggle);
        let dm = b.add_edge(d, Polarity::Fall);
        b.connect_cycle(&[c1, dp, c2, dm]);
        let stg = b.build().unwrap();
        let sg = stg.state_graph(100).unwrap();
        assert_eq!(sg.num_states(), 4);
        // The symbolic (marking, code) space must agree with the explicit
        // graph: 4 markings, each with a distinct code (c toggles).
        let space = stg.symbolic_encoded_state_space(0, None);
        assert!(space.converged);
        assert_eq!(space.state_count(), sg.num_states() as u128);
    }

    #[test]
    fn symbolic_usc_and_csc_checks() {
        assert!(!benchmarks::handshake().symbolic_usc_violation(0));
        assert!(!benchmarks::handshake().symbolic_csc_violation(0));
        assert!(benchmarks::pulser().symbolic_usc_violation(0));
        assert!(benchmarks::pulser().symbolic_csc_violation(0));
        assert!(benchmarks::vme_read().symbolic_csc_violation(0));
        assert!(!benchmarks::parallelizer(3).symbolic_csc_violation(0));
    }

    #[test]
    fn initial_marking_is_reachable() {
        let stg = benchmarks::vme_read();
        let space = stg.symbolic_state_space(None);
        let assignment = stg.net().initial_marking().to_bools();
        assert!(space.contains(&assignment));
    }

    #[test]
    fn wide_designs_compute_encoded_spaces_past_64_signals() {
        // 40 handshakes = 80 signals: beyond any u64 code, fine symbolically.
        let stg = benchmarks::parallel_handshakes(40);
        let space = stg.symbolic_encoded_state_space(0, None);
        assert!(space.converged);
        assert_eq!(space.num_signals(), 80);
        let states = space.state_count_f64();
        let expected = 4f64.powi(40);
        assert!(
            (states / expected - 1.0).abs() < 1e-9,
            "expected ~4^40 encoded states, got {states:e}"
        );
    }

    #[test]
    fn iteration_cap_is_respected() {
        let stg = benchmarks::parallel_handshakes(4);
        let space = stg.symbolic_state_space(Some(1));
        assert!(!space.converged);
        assert_eq!(space.iterations, 1);
        let full = stg.symbolic_state_space(None);
        assert!(full.converged);
        assert!(full.iterations > space.iterations);
    }

    #[test]
    fn try_reachability_reports_truncation_as_typed_error() {
        use super::ReachabilityConfig;
        use crate::StgError;
        let stg = benchmarks::parallel_handshakes(4);
        let config = ReachabilityConfig { max_iterations: Some(1), ..Default::default() };
        match stg.try_symbolic_state_space(&config) {
            Err(StgError::NotConverged { iterations }) => assert_eq!(iterations, 1),
            other => panic!("expected NotConverged, got {other:?}"),
        }
        // With the default cap the same net converges and returns Ok.
        let space = stg.try_symbolic_state_space(&ReachabilityConfig::default()).unwrap();
        assert!(space.converged);
    }

    #[test]
    fn node_budget_interrupts_reachability() {
        use super::ReachabilityConfig;
        use crate::StgError;
        use bdd::{Budget, Resource};
        let stg = benchmarks::parallel_handshakes(8);
        let budget = Budget::new(Some(512), None, None);
        let config = ReachabilityConfig::with_budget(budget.clone());
        match stg.try_symbolic_state_space(&config) {
            Err(StgError::Budget(trip)) => {
                assert_eq!(trip.resource, Resource::Nodes);
                assert_eq!(trip.stage, "reachability");
                assert!(trip.spent > trip.limit);
            }
            other => panic!("expected a budget trip, got {other:?}"),
        }
        assert!(budget.nodes_spent() > 512);
    }

    #[test]
    fn budget_trip_surfaces_from_the_encoding_checks() {
        use super::ReachabilityConfig;
        use crate::StgError;
        use bdd::Budget;
        let stg = benchmarks::parallel_handshakes(8);
        let config = ReachabilityConfig::with_budget(Budget::new(Some(512), None, None));
        assert!(matches!(stg.try_symbolic_csc_violation(0, &config), Err(StgError::Budget(_))));
    }
}
