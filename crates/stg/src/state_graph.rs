//! Binary-coded state graphs.
//!
//! The state graph (SG) of an STG is the reachability graph of its Petri net
//! together with a binary signal vector per state.  Construction checks
//! *consistency*: rising and falling transitions of each signal must
//! alternate along every firing sequence, so that every reachable marking
//! can be labelled with a unique vector of signal values (paper §4).  Once
//! consistency holds, the Complete State Coding property is what stands
//! between the specification and a logic implementation.

use crate::model::{Stg, TransitionLabel};
use crate::signal::{Polarity, Signal, SignalId};
use crate::StgError;
use petri::{Marking, TransId};
use std::collections::HashMap;
use ts::{EventId, StateId, TransitionSystem};

/// The binary-coded state graph of an STG.
#[derive(Clone, Debug)]
pub struct StateGraph {
    /// The reachability graph; event ids coincide with net transition ids.
    pub ts: TransitionSystem,
    /// The marking of every state.
    pub markings: Vec<Marking>,
    codes: Vec<u64>,
    signals: Vec<Signal>,
    event_labels: Vec<TransitionLabel>,
}

impl Stg {
    /// Builds the explicit binary-coded state graph, exploring at most
    /// `max_states` markings.
    ///
    /// # Errors
    ///
    /// Propagates reachability errors ([`StgError::Net`]) and reports
    /// [`StgError::Inconsistent`] if the STG is not consistently labelled.
    pub fn state_graph(&self, max_states: usize) -> Result<StateGraph, StgError> {
        let rg = self.net().reachability_graph(max_states)?;
        let num_states = rg.ts.num_states();
        let num_signals = self.num_signals();
        if num_signals > 64 {
            return Err(StgError::TooManySignals { count: num_signals });
        }

        let event_labels: Vec<TransitionLabel> =
            (0..self.net().num_transitions()).map(|t| self.label(TransId::from(t))).collect();

        // Constraint propagation: known[s] is the mask of signals whose value
        // in state s has been determined, value[s] holds those values.
        let mut known = vec![0u64; num_states];
        let mut value = vec![0u64; num_states];

        let set_bit = |state: StateId,
                       signal: usize,
                       bit: bool,
                       known: &mut Vec<u64>,
                       value: &mut Vec<u64>|
         -> Result<bool, StgError> {
            let mask = 1u64 << signal;
            let s = state.index();
            if known[s] & mask != 0 {
                let current = value[s] & mask != 0;
                if current != bit {
                    return Err(StgError::Inconsistent {
                        signal: self.signals()[signal].name.clone(),
                        state: format!("m{s}"),
                    });
                }
                return Ok(false);
            }
            known[s] |= mask;
            if bit {
                value[s] |= mask;
            }
            Ok(true)
        };

        // Iterate to a fixpoint.  Each pass walks every transition once; the
        // number of passes is bounded by the diameter of the graph.  Signals
        // whose edges are all toggles have no intrinsic anchor; they are
        // anchored to 0 in the initial state and propagation is re-run.
        loop {
            loop {
                let mut changed = false;
                for t in rg.ts.transitions() {
                    let label = event_labels[t.event.index()];
                    let (switching, polarity) = match label {
                        TransitionLabel::Edge { signal, polarity } => {
                            (Some(signal), Some(polarity))
                        }
                        TransitionLabel::Dummy => (None, None),
                    };
                    for sig in 0..num_signals {
                        let mask = 1u64 << sig;
                        if switching == Some(SignalId::from(sig)) {
                            match polarity.expect("edge label has a polarity") {
                                Polarity::Rise => {
                                    changed |=
                                        set_bit(t.source, sig, false, &mut known, &mut value)?;
                                    changed |=
                                        set_bit(t.target, sig, true, &mut known, &mut value)?;
                                }
                                Polarity::Fall => {
                                    changed |=
                                        set_bit(t.source, sig, true, &mut known, &mut value)?;
                                    changed |=
                                        set_bit(t.target, sig, false, &mut known, &mut value)?;
                                }
                                Polarity::Toggle => {
                                    if known[t.source.index()] & mask != 0 {
                                        let v = value[t.source.index()] & mask != 0;
                                        changed |=
                                            set_bit(t.target, sig, !v, &mut known, &mut value)?;
                                    }
                                    if known[t.target.index()] & mask != 0 {
                                        let v = value[t.target.index()] & mask != 0;
                                        changed |=
                                            set_bit(t.source, sig, !v, &mut known, &mut value)?;
                                    }
                                }
                            }
                        } else {
                            // The signal does not switch: the value is copied in
                            // both directions.
                            if known[t.source.index()] & mask != 0 {
                                let v = value[t.source.index()] & mask != 0;
                                changed |= set_bit(t.target, sig, v, &mut known, &mut value)?;
                            }
                            if known[t.target.index()] & mask != 0 {
                                let v = value[t.target.index()] & mask != 0;
                                changed |= set_bit(t.source, sig, v, &mut known, &mut value)?;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }

            // Anchor any signal whose value is still undetermined in the
            // initial state and run propagation again; if nothing needed
            // anchoring the codes are complete.
            let initial = rg.ts.initial();
            let mut anchored = false;
            for sig in 0..num_signals {
                if known[initial.index()] & (1u64 << sig) == 0 {
                    set_bit(initial, sig, false, &mut known, &mut value)?;
                    anchored = true;
                }
            }
            if !anchored {
                break;
            }
        }

        // Signals that never switch keep the default value 0 everywhere.
        Ok(StateGraph {
            ts: rg.ts,
            markings: rg.markings,
            codes: value,
            signals: self.signals().to_vec(),
            event_labels,
        })
    }
}

impl StateGraph {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.ts.num_states()
    }

    /// Number of signals.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// The signals of the underlying STG.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// The label of a state-graph event (events coincide with net
    /// transitions).
    pub fn event_label(&self, event: EventId) -> TransitionLabel {
        self.event_labels[event.index()]
    }

    /// The binary code of `state`, one bit per signal (bit `i` = value of
    /// signal `i`).
    pub fn code(&self, state: StateId) -> u64 {
        self.codes[state.index()]
    }

    /// The value of `signal` in `state`.
    pub fn signal_value(&self, state: StateId, signal: SignalId) -> bool {
        self.codes[state.index()] & (1 << signal.index()) != 0
    }

    /// The signal edges enabled in `state`.
    ///
    /// Allocates a fresh vector; iterative callers should reuse a buffer
    /// via [`StateGraph::enabled_edges_into`].
    pub fn enabled_edges(&self, state: StateId) -> Vec<(SignalId, Polarity)> {
        let mut edges = Vec::new();
        self.enabled_edges_into(state, &mut edges);
        edges
    }

    /// Collects the signal edges enabled in `state` into `out` (cleared
    /// first, capacity retained across calls) — the allocation-free variant
    /// for per-state sweeps.
    pub fn enabled_edges_into(&self, state: StateId, out: &mut Vec<(SignalId, Polarity)>) {
        out.clear();
        for &(event, _) in self.ts.successors(state) {
            if let TransitionLabel::Edge { signal, polarity } = self.event_labels[event.index()] {
                if !out.contains(&(signal, polarity)) {
                    out.push((signal, polarity));
                }
            }
        }
    }

    /// Bit mask of the signals with an enabled edge in `state`.
    pub fn enabled_signal_mask(&self, state: StateId) -> u64 {
        let mut mask = 0u64;
        for &(event, _) in self.ts.successors(state) {
            if let TransitionLabel::Edge { signal, .. } = self.event_labels[event.index()] {
                mask |= 1 << signal.index();
            }
        }
        mask
    }

    /// Bit mask of the *non-input* signals with an enabled edge in `state`.
    pub fn enabled_non_input_mask(&self, state: StateId) -> u64 {
        let mut mask = 0u64;
        for &(event, _) in self.ts.successors(state) {
            if let TransitionLabel::Edge { signal, .. } = self.event_labels[event.index()] {
                if self.signals[signal.index()].kind.is_non_input() {
                    mask |= 1 << signal.index();
                }
            }
        }
        mask
    }

    /// The code of a state rendered as a string, one character per signal in
    /// id order, with `*` marking signals that are excited (enabled to
    /// switch) — the notation used in Fig. 3 of the paper.
    pub fn code_string(&self, state: StateId) -> String {
        let enabled = self.enabled_signal_mask(state);
        let mut out = String::new();
        for i in 0..self.num_signals() {
            out.push(if self.codes[state.index()] & (1 << i) != 0 { '1' } else { '0' });
            if enabled & (1 << i) != 0 {
                out.push('*');
            }
        }
        out
    }

    /// Returns `true` — construction already validated consistency; exposed
    /// so callers can assert the invariant explicitly in examples and tests.
    pub fn is_consistent(&self) -> bool {
        self.ts.transitions().iter().all(|t| match self.event_labels[t.event.index()] {
            TransitionLabel::Edge { signal, polarity } => {
                let before = self.signal_value(t.source, signal);
                let after = self.signal_value(t.target, signal);
                match polarity {
                    Polarity::Rise => !before && after,
                    Polarity::Fall => before && !after,
                    Polarity::Toggle => before != after,
                }
            }
            TransitionLabel::Dummy => self.code(t.source) == self.code(t.target),
        })
    }

    /// Returns `true` if no two distinct states share the same binary code
    /// (Unique State Coding).
    pub fn unique_state_coding_holds(&self) -> bool {
        let mut seen: HashMap<u64, StateId> = HashMap::new();
        for s in 0..self.num_states() {
            let s = StateId::from(s);
            if seen.insert(self.code(s), s).is_some() {
                return false;
            }
        }
        true
    }

    /// Returns `true` if Complete State Coding holds: any two states with
    /// the same binary code enable exactly the same non-input signals.
    pub fn complete_state_coding_holds(&self) -> bool {
        let mut by_code: HashMap<u64, u64> = HashMap::new();
        for s in 0..self.num_states() {
            let s = StateId::from(s);
            let mask = self.enabled_non_input_mask(s);
            match by_code.entry(self.code(s)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != mask {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(mask);
                }
            }
        }
        true
    }

    /// Groups the states by binary code.
    pub fn states_by_code(&self) -> HashMap<u64, Vec<StateId>> {
        let mut map: HashMap<u64, Vec<StateId>> = HashMap::new();
        for s in 0..self.num_states() {
            let s = StateId::from(s);
            map.entry(self.code(s)).or_default().push(s);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::SignalKind;
    use crate::StgBuilder;

    fn handshake() -> Stg {
        let mut b = StgBuilder::new("handshake");
        let req = b.add_signal("req", SignalKind::Input);
        let ack = b.add_signal("ack", SignalKind::Output);
        let rp = b.add_edge(req, Polarity::Rise);
        let ap = b.add_edge(ack, Polarity::Rise);
        let rm = b.add_edge(req, Polarity::Fall);
        let am = b.add_edge(ack, Polarity::Fall);
        b.connect_cycle(&[rp, ap, rm, am]);
        b.build().unwrap()
    }

    /// Two signals, output pulses twice per input cycle — the canonical
    /// small CSC-conflict example ("pulser").
    fn pulser() -> Stg {
        let mut b = StgBuilder::new("pulser");
        let x = b.add_signal("x", SignalKind::Input);
        let y = b.add_signal("y", SignalKind::Output);
        let xp = b.add_edge(x, Polarity::Rise);
        let yp1 = b.add_edge(y, Polarity::Rise);
        let ym1 = b.add_edge(y, Polarity::Fall);
        let xm = b.add_edge(x, Polarity::Fall);
        let yp2 = b.add_edge(y, Polarity::Rise);
        let ym2 = b.add_edge(y, Polarity::Fall);
        b.connect_cycle(&[xp, yp1, ym1, xm, yp2, ym2]);
        b.build().unwrap()
    }

    #[test]
    fn handshake_state_graph_codes() {
        let sg = handshake().state_graph(100).unwrap();
        assert_eq!(sg.num_states(), 4);
        assert!(sg.is_consistent());
        assert!(sg.unique_state_coding_holds());
        assert!(sg.complete_state_coding_holds());
        // Initial state: both signals 0, req+ enabled.
        let init = sg.ts.initial();
        assert_eq!(sg.code(init), 0);
        let req = SignalId::from(0usize);
        assert!(!sg.signal_value(init, req));
        assert_eq!(sg.enabled_edges(init), vec![(req, Polarity::Rise)]);
        // The buffer-reusing variant clears stale content and agrees with
        // the allocating one for every state.
        let mut buffer = vec![(SignalId::from(9usize), Polarity::Toggle)];
        for s in 0..sg.num_states() {
            let s = StateId::from(s);
            sg.enabled_edges_into(s, &mut buffer);
            assert_eq!(buffer, sg.enabled_edges(s));
        }
        assert_eq!(sg.enabled_non_input_mask(init), 0, "only the input is enabled initially");
        assert_eq!(sg.code_string(init), "0*0");
        // Codes cycle through 00 -> 10 -> 11 -> 01.
        let codes: std::collections::HashSet<u64> =
            (0..4).map(|i| sg.code(StateId::from(i))).collect();
        assert_eq!(codes, [0b00, 0b01, 0b10, 0b11].into_iter().collect());
    }

    #[test]
    fn pulser_has_csc_conflicts_but_is_consistent() {
        let sg = pulser().state_graph(100).unwrap();
        assert_eq!(sg.num_states(), 6);
        assert!(sg.is_consistent());
        assert!(!sg.unique_state_coding_holds());
        assert!(!sg.complete_state_coding_holds());
        // Exactly two code classes have two states each.
        let groups = sg.states_by_code();
        let multi: Vec<_> = groups.values().filter(|v| v.len() > 1).collect();
        assert_eq!(multi.len(), 2);
    }

    #[test]
    fn inconsistent_stg_is_rejected() {
        // x rises twice in a row without falling: inconsistent.
        let mut b = StgBuilder::new("bad");
        let x = b.add_signal("x", SignalKind::Output);
        let first = b.add_edge(x, Polarity::Rise);
        let second = b.add_edge(x, Polarity::Rise);
        b.connect_cycle(&[first, second]);
        let stg = b.build().unwrap();
        assert!(matches!(stg.state_graph(100).unwrap_err(), StgError::Inconsistent { .. }));
    }

    #[test]
    fn toggle_transitions_resolve_their_direction() {
        let mut b = StgBuilder::new("toggle");
        let c = b.add_signal("c", SignalKind::Output);
        let d = b.add_signal("d", SignalKind::Output);
        let c1 = b.add_edge(c, Polarity::Toggle);
        let dp = b.add_edge(d, Polarity::Rise);
        let c2 = b.add_edge(c, Polarity::Toggle);
        let dm = b.add_edge(d, Polarity::Fall);
        b.connect_cycle(&[c1, dp, c2, dm]);
        let stg = b.build().unwrap();
        let sg = stg.state_graph(100).unwrap();
        assert_eq!(sg.num_states(), 4);
        assert!(sg.is_consistent());
        // c alternates 0,1,0,1 around the cycle even though its edges are
        // toggles, because d's rise/fall anchors the code values.
        assert!(sg.unique_state_coding_holds());
    }

    #[test]
    fn dummy_transitions_keep_the_code() {
        let mut b = StgBuilder::new("dummy");
        let a = b.add_signal("a", SignalKind::Input);
        let ap = b.add_edge(a, Polarity::Rise);
        let eps = b.add_dummy("eps");
        let am = b.add_edge(a, Polarity::Fall);
        b.connect_cycle(&[ap, eps, am]);
        let sg = b.build().unwrap().state_graph(100).unwrap();
        assert!(sg.is_consistent());
        assert_eq!(sg.num_states(), 3);
        assert!(!sg.unique_state_coding_holds(), "the dummy creates two states with equal codes");
        // ... but CSC still holds because no non-input signal distinguishes
        // them (there are no outputs at all).
        assert!(sg.complete_state_coding_holds());
    }

    #[test]
    fn code_strings_mark_excited_signals() {
        let sg = pulser().state_graph(100).unwrap();
        let init = sg.ts.initial();
        // x is excited in the initial state (x+ enabled) and both signals are 0.
        assert_eq!(sg.code_string(init), "0*0");
    }
}
