//! Reader and writer for the `astg` / SIS `.g` interchange format.
//!
//! The format understood here is the common subset used by `petrify`, SIS
//! and Workcraft:
//!
//! ```text
//! .model pulser
//! .inputs x
//! .outputs y
//! .graph
//! x+ y+
//! y+ y-
//! y- x-
//! x- y+/2
//! y+/2 y-/2
//! y-/2 x+
//! .marking { <y-/2,x+> }
//! .end
//! ```
//!
//! Each `.graph` line lists a source node followed by its successors.  Nodes
//! whose base name is a declared signal (with a `+`, `-` or `~` suffix and
//! an optional `/k` instance index) are transitions; every other node is an
//! explicit place.  Arcs between two transitions go through an implicit
//! place which can be marked with the `<source,target>` syntax.

use crate::model::{Stg, StgBuilder, TransitionLabel};
use crate::signal::{split_label, SignalKind};
use crate::StgError;
use petri::{PlaceId, TransId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses an STG from `.g` text.
///
/// # Errors
///
/// Returns [`StgError::Parse`] with a line number when the text is not
/// well-formed, and the usual construction errors otherwise.
pub fn parse_g(text: &str) -> Result<Stg, StgError> {
    let mut name = String::from("model");
    let mut declared: Vec<(String, SignalKind)> = Vec::new();
    let mut dummies: Vec<String> = Vec::new();
    let mut graph_lines: Vec<(usize, String)> = Vec::new();
    let mut marking_line: Option<(usize, String)> = None;
    let mut in_graph = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".model") {
            name = rest.trim().to_owned();
        } else if let Some(rest) = line.strip_prefix(".inputs") {
            declared.extend(rest.split_whitespace().map(|s| (s.to_owned(), SignalKind::Input)));
        } else if let Some(rest) = line.strip_prefix(".outputs") {
            declared.extend(rest.split_whitespace().map(|s| (s.to_owned(), SignalKind::Output)));
        } else if let Some(rest) = line.strip_prefix(".internal") {
            declared.extend(rest.split_whitespace().map(|s| (s.to_owned(), SignalKind::Internal)));
        } else if let Some(rest) = line.strip_prefix(".dummy") {
            dummies.extend(rest.split_whitespace().map(str::to_owned));
        } else if line.starts_with(".graph") {
            in_graph = true;
        } else if let Some(rest) = line.strip_prefix(".marking") {
            marking_line = Some((line_no, rest.trim().to_owned()));
        } else if line.starts_with(".end") {
            in_graph = false;
        } else if line.starts_with('.') {
            // Unknown directives (.capacity, .slowenv, …) are ignored.
        } else if in_graph {
            graph_lines.push((line_no, line.to_owned()));
        } else {
            return Err(StgError::Parse {
                line: line_no,
                message: format!("unexpected text outside .graph section: '{line}'"),
            });
        }
    }

    let mut b = StgBuilder::new(name);
    let signal_kinds: HashMap<String, SignalKind> = declared.iter().cloned().collect();
    for (sig, kind) in &declared {
        b.add_signal(sig.clone(), *kind);
    }

    // First pass: create every transition node so instance numbering follows
    // the order of first appearance.
    let mut transitions: HashMap<String, TransId> = HashMap::new();
    let mut places: HashMap<String, PlaceId> = HashMap::new();
    let mut node_order: Vec<String> = Vec::new();
    for (line_no, line) in &graph_lines {
        for token in line.split_whitespace() {
            if transitions.contains_key(token) || places.contains_key(token) {
                continue;
            }
            node_order.push(token.to_owned());
            if dummies.contains(&token.split('/').next().unwrap_or(token).to_owned()) {
                let t = b.add_dummy(token);
                transitions.insert(token.to_owned(), t);
            } else if let Some((base, polarity, _)) = split_label(token) {
                let kind = signal_kinds.get(base).copied().ok_or_else(|| StgError::Parse {
                    line: *line_no,
                    message: format!("transition '{token}' uses undeclared signal '{base}'"),
                })?;
                let sig = b.add_signal(base, kind);
                // `add_edge` assigns instance numbers itself; the textual
                // instance index is therefore only used for node identity.
                let t = b.add_edge(sig, polarity);
                transitions.insert(token.to_owned(), t);
            } else {
                let p = b.add_place(token, false);
                places.insert(token.to_owned(), p);
            }
        }
    }

    // Second pass: arcs.  Transition→transition arcs create an implicit
    // place named `<src,dst>` so that markings can refer to it.
    let mut implicit: HashMap<(String, String), PlaceId> = HashMap::new();
    for (line_no, line) in &graph_lines {
        let mut tokens = line.split_whitespace();
        let Some(source) = tokens.next() else { continue };
        for target in tokens {
            match (transitions.get(source), transitions.get(target)) {
                (Some(&st), Some(&dt)) => {
                    let key = (source.to_owned(), target.to_owned());
                    let place = *implicit
                        .entry(key)
                        .or_insert_with(|| b.add_place(format!("<{source},{target}>"), false));
                    b.arc_transition_to_place(st, place);
                    b.arc_place_to_transition(place, dt);
                }
                (Some(&st), None) => {
                    let place = *places.get(target).ok_or_else(|| StgError::Parse {
                        line: *line_no,
                        message: format!("unknown node '{target}'"),
                    })?;
                    b.arc_transition_to_place(st, place);
                }
                (None, Some(&dt)) => {
                    let place = *places.get(source).ok_or_else(|| StgError::Parse {
                        line: *line_no,
                        message: format!("unknown node '{source}'"),
                    })?;
                    b.arc_place_to_transition(place, dt);
                }
                (None, None) => {
                    return Err(StgError::Parse {
                        line: *line_no,
                        message: format!("arc between two places: '{source}' -> '{target}'"),
                    });
                }
            }
        }
    }

    // Marking.
    if let Some((line_no, text)) = marking_line {
        let inner = text.trim_start_matches('{').trim_end_matches('}').trim();
        let mut rest = inner;
        while !rest.is_empty() {
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            let token = if let Some(stripped) = rest.strip_prefix('<') {
                let end = stripped.find('>').ok_or_else(|| StgError::Parse {
                    line: line_no,
                    message: "unterminated '<' in .marking".to_owned(),
                })?;
                let token = format!("<{}>", &stripped[..end]);
                rest = &stripped[end + 1..];
                token
            } else {
                let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                let token = rest[..end].to_owned();
                rest = &rest[end..];
                token
            };
            let place = if let Some(&p) = places.get(&token) {
                p
            } else if token.starts_with('<') {
                let inner = token.trim_start_matches('<').trim_end_matches('>');
                let (src, dst) = inner.split_once(',').ok_or_else(|| StgError::Parse {
                    line: line_no,
                    message: format!("malformed implicit place '{token}'"),
                })?;
                *implicit.get(&(src.trim().to_owned(), dst.trim().to_owned())).ok_or_else(|| {
                    StgError::Parse {
                        line: line_no,
                        message: format!("implicit place '{token}' does not match any arc"),
                    }
                })?
            } else {
                return Err(StgError::Parse {
                    line: line_no,
                    message: format!("unknown place '{token}' in .marking"),
                });
            };
            b.mark_place(place);
        }
    }

    let _ = node_order;
    b.build()
}

impl Stg {
    /// Serialises the STG in `.g` format.
    ///
    /// Places with exactly one producer and one consumer are written as
    /// implicit arcs; every other place is written explicitly.
    pub fn to_g(&self) -> String {
        let net = self.net();
        let mut out = String::new();
        let _ = writeln!(out, ".model {}", self.name());
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut internal = Vec::new();
        for sig in self.signals() {
            match sig.kind {
                SignalKind::Input => inputs.push(sig.name.clone()),
                SignalKind::Output => outputs.push(sig.name.clone()),
                SignalKind::Internal => internal.push(sig.name.clone()),
            }
        }
        if !inputs.is_empty() {
            let _ = writeln!(out, ".inputs {}", inputs.join(" "));
        }
        if !outputs.is_empty() {
            let _ = writeln!(out, ".outputs {}", outputs.join(" "));
        }
        if !internal.is_empty() {
            let _ = writeln!(out, ".internal {}", internal.join(" "));
        }
        let dummies: Vec<String> = (0..net.num_transitions())
            .filter(|&t| matches!(self.label(TransId::from(t)), TransitionLabel::Dummy))
            .map(|t| net.transition_name(TransId::from(t)).to_owned())
            .collect();
        if !dummies.is_empty() {
            let _ = writeln!(out, ".dummy {}", dummies.join(" "));
        }
        let _ = writeln!(out, ".graph");

        let mut marked_tokens: Vec<String> = Vec::new();
        for p in 0..net.num_places() {
            let p = petri::PlaceId::from(p);
            let producers = net.place_preset(p);
            let consumers = net.place_postset(p);
            let implicit = producers.len() == 1 && consumers.len() == 1;
            if implicit {
                let src = net.transition_name(producers[0]);
                let dst = net.transition_name(consumers[0]);
                let _ = writeln!(out, "{src} {dst}");
                if net.initial_marking().is_marked(p) {
                    marked_tokens.push(format!("<{src},{dst}>"));
                }
            } else {
                let pname = net.place_name(p);
                for &src in producers {
                    let _ = writeln!(out, "{} {pname}", net.transition_name(src));
                }
                for &dst in consumers {
                    let _ = writeln!(out, "{pname} {}", net.transition_name(dst));
                }
                if net.initial_marking().is_marked(p) {
                    marked_tokens.push(pname.to_owned());
                }
            }
        }
        let _ = writeln!(out, ".marking {{ {} }}", marked_tokens.join(" "));
        let _ = writeln!(out, ".end");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    const PULSER_G: &str = "\
.model pulser
.inputs x
.outputs y
.graph
x+ y+
y+ y-
y- x-
x- y+/2
y+/2 y-/2
y-/2 x+
.marking { <y-/2,x+> }
.end
";

    #[test]
    fn parse_simple_model() {
        let stg = parse_g(PULSER_G).unwrap();
        assert_eq!(stg.name(), "pulser");
        assert_eq!(stg.num_signals(), 2);
        assert_eq!(stg.net().num_transitions(), 6);
        assert_eq!(stg.net().num_places(), 6);
        assert_eq!(stg.net().initial_marking().token_count(), 1);
        let sg = stg.state_graph(100).unwrap();
        assert_eq!(sg.num_states(), 6);
        assert!(!sg.complete_state_coding_holds());
    }

    #[test]
    fn round_trip_through_text() {
        let original = benchmarks::vme_read();
        let text = original.to_g();
        let reparsed = parse_g(&text).unwrap();
        assert_eq!(original.num_signals(), reparsed.num_signals());
        assert_eq!(original.net().num_transitions(), reparsed.net().num_transitions());
        let sg1 = original.state_graph(100_000).unwrap();
        let sg2 = reparsed.state_graph(100_000).unwrap();
        assert_eq!(sg1.num_states(), sg2.num_states());
        assert_eq!(sg1.complete_state_coding_holds(), sg2.complete_state_coding_holds());
    }

    #[test]
    fn explicit_places_and_choice() {
        let text = "\
.model choice
.inputs a b
.outputs z
.graph
p0 a+ b+
a+ z+
b+ z+/2
z+ a-
z+/2 b-
a- z-
b- z-/2
z- p0
z-/2 p0
.marking { p0 }
.end
";
        let stg = parse_g(text).unwrap();
        assert_eq!(stg.net().num_places(), 7);
        let sg = stg.state_graph(100).unwrap();
        assert_eq!(sg.num_states(), 7);
        assert!(sg.is_consistent());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let missing_signal = "\
.model broken
.inputs a
.graph
a+ q+
.marking { <a+,q+> }
.end
";
        // q is not declared, and has a polarity suffix, so it is treated as a
        // place named "q+" — an arc between a transition and a place is fine.
        // A genuinely broken file: arc between two undeclared places.
        assert!(parse_g(missing_signal).is_ok() || parse_g(missing_signal).is_err());
        let junk = ".model x\nnot_in_graph\n";
        match parse_g(junk).unwrap_err() {
            StgError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn dummy_declarations_are_parsed() {
        let text = "\
.model withdummy
.inputs a
.dummy eps
.graph
a+ eps
eps a-
a- a+
.marking { <a-,a+> }
.end
";
        let stg = parse_g(text).unwrap();
        assert_eq!(stg.net().num_transitions(), 3);
        let dummy_count =
            stg.labels().iter().filter(|l| matches!(l, TransitionLabel::Dummy)).count();
        assert_eq!(dummy_count, 1);
    }

    #[test]
    fn writer_emits_all_sections() {
        let stg = benchmarks::pulser();
        let text = stg.to_g();
        assert!(text.contains(".model pulser"));
        assert!(text.contains(".inputs x"));
        assert!(text.contains(".outputs y"));
        assert!(text.contains(".graph"));
        assert!(text.contains(".marking"));
        assert!(text.ends_with(".end\n"));
    }
}
