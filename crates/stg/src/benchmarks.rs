//! Benchmark STGs.
//!
//! The original DAC'96 evaluation uses the classic asynchronous-benchmark
//! suite (master-read, adfast, nak-pa, mmu, pipeN, parN, seqN, …) whose `.g`
//! files are not part of the paper.  This module provides (a) hand-written
//! controllers reconstructed from the literature (the VME bus read cycle,
//! the two-signal "pulser"/duplicator motif of Fig. 3, simple handshakes)
//! and (b) *scalable generators* that reproduce the same state-space shapes:
//! wide concurrency (`parallelizer`, `parallel_handshakes`, `pulser_bank`)
//! and long sequencing with heavy code reuse (`sequencer`).  The experiment
//! harnesses in the `bench` crate map each Table 1 / Table 2 row to one of
//! these models (see `EXPERIMENTS.md`).

use crate::model::{Stg, StgBuilder};
use crate::signal::Polarity;

/// A single four-phase handshake `req+ ; ack+ ; req- ; ack-`.
///
/// CSC holds; used as the smoke-test model.
pub fn handshake() -> Stg {
    let mut b = StgBuilder::new("handshake");
    let req = b.add_input("req");
    let ack = b.add_output("ack");
    let rp = b.add_edge(req, Polarity::Rise);
    let ap = b.add_edge(ack, Polarity::Rise);
    let rm = b.add_edge(req, Polarity::Fall);
    let am = b.add_edge(ack, Polarity::Fall);
    b.connect_cycle(&[rp, ap, rm, am]);
    b.build().expect("handshake is well-formed")
}

/// The two-signal CSC-conflict motif used throughout the paper's examples:
/// the output `y` pulses twice per cycle of the input `x`, so the codes
/// `x=1,y=0` and `x=0,y=0` each occur twice with different outputs enabled.
pub fn pulser() -> Stg {
    let mut b = StgBuilder::new("pulser");
    let x = b.add_input("x");
    let y = b.add_output("y");
    let xp = b.add_edge(x, Polarity::Rise);
    let yp1 = b.add_edge(y, Polarity::Rise);
    let ym1 = b.add_edge(y, Polarity::Fall);
    let xm = b.add_edge(x, Polarity::Fall);
    let yp2 = b.add_edge(y, Polarity::Rise);
    let ym2 = b.add_edge(y, Polarity::Fall);
    b.connect_cycle(&[xp, yp1, ym1, xm, yp2, ym2]);
    b.build().expect("pulser is well-formed")
}

/// The VME bus controller, read cycle — the textbook CSC-conflict example.
///
/// Inputs: `dsr` (data send request), `ldtack` (local device acknowledge).
/// Outputs: `lds` (local device select), `d` (data latch), `dtack`
/// (data acknowledge).  One state signal must be inserted to satisfy CSC.
pub fn vme_read() -> Stg {
    let mut b = StgBuilder::new("vme_read");
    let dsr = b.add_input("dsr");
    let ldtack = b.add_input("ldtack");
    let lds = b.add_output("lds");
    let d = b.add_output("d");
    let dtack = b.add_output("dtack");

    let dsr_p = b.add_edge(dsr, Polarity::Rise);
    let lds_p = b.add_edge(lds, Polarity::Rise);
    let ldtack_p = b.add_edge(ldtack, Polarity::Rise);
    let d_p = b.add_edge(d, Polarity::Rise);
    let dtack_p = b.add_edge(dtack, Polarity::Rise);
    let dsr_m = b.add_edge(dsr, Polarity::Fall);
    let d_m = b.add_edge(d, Polarity::Fall);
    let dtack_m = b.add_edge(dtack, Polarity::Fall);
    let lds_m = b.add_edge(lds, Polarity::Fall);
    let ldtack_m = b.add_edge(ldtack, Polarity::Fall);

    b.connect(dsr_p, lds_p, false);
    b.connect(lds_p, ldtack_p, false);
    b.connect(ldtack_p, d_p, false);
    b.connect(d_p, dtack_p, false);
    b.connect(dtack_p, dsr_m, false);
    b.connect(dsr_m, d_m, false);
    b.connect(d_m, dtack_m, false);
    b.connect(d_m, lds_m, false);
    b.connect(lds_m, ldtack_m, false);
    // The next read may only start once dtack has been withdrawn and the
    // local device has released its acknowledge.
    b.connect(dtack_m, dsr_p, true);
    b.connect(ldtack_m, lds_p, true);
    b.build().expect("vme_read is well-formed")
}

/// A sequencer: the input `x` goes high, the outputs `y0 … yn-1` pulse one
/// after the other, a `done` output rises, `x` goes low, `done` falls, and
/// the cycle repeats.
///
/// Between consecutive pulses the code returns to `x=1, y*=0, done=0`, so
/// the model has `(n+1)·n/2` CSC conflict pairs, all of them solvable
/// (output events separate every conflicting pair) — the same shape as the
/// `seqN` benchmarks of Table 2.
pub fn sequencer(n: usize) -> Stg {
    assert!(n >= 1, "sequencer needs at least one output");
    let mut b = StgBuilder::new(format!("seq{n}"));
    let x = b.add_input("x");
    let done = b.add_output("done");
    let mut cycle = Vec::new();
    cycle.push(b.add_edge(x, Polarity::Rise));
    for i in 0..n {
        let y = b.add_output(format!("y{i}"));
        cycle.push(b.add_edge(y, Polarity::Rise));
        cycle.push(b.add_edge(y, Polarity::Fall));
    }
    cycle.push(b.add_edge(done, Polarity::Rise));
    cycle.push(b.add_edge(x, Polarity::Fall));
    cycle.push(b.add_edge(done, Polarity::Fall));
    b.connect_cycle(&cycle);
    b.build().expect("sequencer is well-formed")
}

/// `n` completely independent four-phase handshakes running concurrently.
///
/// The reachable state count is `4^n`; CSC holds.  This is the pure
/// state-explosion workload corresponding to the `parN` rows of Table 1.
pub fn parallel_handshakes(n: usize) -> Stg {
    assert!(n >= 1);
    let mut b = StgBuilder::new(format!("par_hs{n}"));
    for i in 0..n {
        let req = b.add_input(format!("r{i}"));
        let ack = b.add_output(format!("a{i}"));
        let rp = b.add_edge(req, Polarity::Rise);
        let ap = b.add_edge(ack, Polarity::Rise);
        let rm = b.add_edge(req, Polarity::Fall);
        let am = b.add_edge(ack, Polarity::Fall);
        b.connect_cycle(&[rp, ap, rm, am]);
    }
    b.build().expect("parallel handshakes are well-formed")
}

/// A fork/join parallelizer: `go+` releases `n` concurrent output rises,
/// `done+` reports completion, then everything resets.
///
/// The state count grows as `O(2^n)` (all interleavings of the fork);
/// CSC holds because the phase is observable from `go` and `done`.
pub fn parallelizer(n: usize) -> Stg {
    assert!(n >= 1);
    let mut b = StgBuilder::new(format!("par{n}"));
    let go = b.add_input("go");
    let done = b.add_output("done");
    let go_p = b.add_edge(go, Polarity::Rise);
    let go_m = b.add_edge(go, Polarity::Fall);
    let done_p = b.add_edge(done, Polarity::Rise);
    let done_m = b.add_edge(done, Polarity::Fall);
    for i in 0..n {
        let d = b.add_output(format!("d{i}"));
        let dp = b.add_edge(d, Polarity::Rise);
        let dm = b.add_edge(d, Polarity::Fall);
        b.connect(go_p, dp, false);
        b.connect(dp, done_p, false);
        b.connect(go_m, dm, false);
        b.connect(dm, done_m, false);
    }
    b.connect(done_p, go_m, false);
    b.connect(done_m, go_p, true);
    b.build().expect("parallelizer is well-formed")
}

/// `n` independent copies of the [`pulser`] motif running concurrently:
/// `6^n` states, every copy contributing its own CSC conflicts.
///
/// This is the workload used for the "large state space *and* hard encoding"
/// rows of Table 1 (master-read / adfast class).
pub fn pulser_bank(n: usize) -> Stg {
    assert!(n >= 1);
    let mut b = StgBuilder::new(format!("pulser_bank{n}"));
    for i in 0..n {
        let x = b.add_input(format!("x{i}"));
        let y = b.add_output(format!("y{i}"));
        let xp = b.add_edge(x, Polarity::Rise);
        let yp1 = b.add_edge(y, Polarity::Rise);
        let ym1 = b.add_edge(y, Polarity::Fall);
        let xm = b.add_edge(x, Polarity::Fall);
        let yp2 = b.add_edge(y, Polarity::Rise);
        let ym2 = b.add_edge(y, Polarity::Fall);
        b.connect_cycle(&[xp, yp1, ym1, xm, yp2, ym2]);
    }
    b.build().expect("pulser bank is well-formed")
}

/// A modulo-`2n` counter: every input pulse is acknowledged by the output
/// `a`; the output `q` rises after `n` acknowledged pulses and falls after
/// another `n`.
///
/// The counting history is not visible in the code (only `x`, `a`, `q` are
/// observable), so the model is rich in CSC conflicts — the `mod4-counter`
/// class of Table 2 — and every conflict is separated by output events, so
/// it is solvable without touching the environment.
pub fn counter(n: usize) -> Stg {
    assert!(n >= 1);
    let mut b = StgBuilder::new(format!("counter{n}"));
    let x = b.add_input("x");
    let a = b.add_output("a");
    let q = b.add_output("q");
    let mut cycle = Vec::new();
    for half in 0..2 {
        for _ in 0..n {
            cycle.push(b.add_edge(x, Polarity::Rise));
            cycle.push(b.add_edge(a, Polarity::Rise));
            cycle.push(b.add_edge(x, Polarity::Fall));
            cycle.push(b.add_edge(a, Polarity::Fall));
        }
        cycle.push(b.add_edge(q, if half == 0 { Polarity::Rise } else { Polarity::Fall }));
    }
    b.connect_cycle(&cycle);
    b.build().expect("counter is well-formed")
}

/// One [`pulser`] motif (CSC-conflicted) composed with `n` independent
/// four-phase handshakes (conflict-free): `2 + 2n` signals and `6 · 4^n`
/// reachable states, with the conflict confined to the pulser component.
///
/// With `n ≥ 32` the model has more than 64 signals, so the explicit
/// state-graph pipeline (whose codes are packed into a `u64`) cannot even
/// represent it — resolving its CSC conflict requires the fully symbolic
/// solver.  This is the "wide but locally conflicted" workload of the
/// `csc_symbolic` bench baseline.
pub fn wide_conflict(n: usize) -> Stg {
    assert!(n >= 1);
    let mut b = StgBuilder::new(format!("wide_conflict{n}"));
    let x = b.add_input("x");
    let y = b.add_output("y");
    let xp = b.add_edge(x, Polarity::Rise);
    let yp1 = b.add_edge(y, Polarity::Rise);
    let ym1 = b.add_edge(y, Polarity::Fall);
    let xm = b.add_edge(x, Polarity::Fall);
    let yp2 = b.add_edge(y, Polarity::Rise);
    let ym2 = b.add_edge(y, Polarity::Fall);
    b.connect_cycle(&[xp, yp1, ym1, xm, yp2, ym2]);
    for i in 0..n {
        let req = b.add_input(format!("r{i}"));
        let ack = b.add_output(format!("a{i}"));
        let rp = b.add_edge(req, Polarity::Rise);
        let ap = b.add_edge(ack, Polarity::Rise);
        let rm = b.add_edge(req, Polarity::Fall);
        let am = b.add_edge(ack, Polarity::Fall);
        b.connect_cycle(&[rp, ap, rm, am]);
    }
    b.build().expect("wide_conflict is well-formed")
}

/// A two-stage read controller in the style of `master-read`: two
/// subordinate handshakes (memory and bus) driven from one master request,
/// partially overlapped.
///
/// The overlap hides the distinction between "memory phase" and "bus phase"
/// from the code, producing CSC conflicts.
pub fn master_read_like() -> Stg {
    let mut b = StgBuilder::new("master_read_like");
    let req = b.add_input("req");
    let mack = b.add_input("mack");
    let back = b.add_input("back");
    let mreq = b.add_output("mreq");
    let breq = b.add_output("breq");
    let done = b.add_output("done");

    let req_p = b.add_edge(req, Polarity::Rise);
    let mreq_p = b.add_edge(mreq, Polarity::Rise);
    let mack_p = b.add_edge(mack, Polarity::Rise);
    let breq_p = b.add_edge(breq, Polarity::Rise);
    let back_p = b.add_edge(back, Polarity::Rise);
    let mreq_m = b.add_edge(mreq, Polarity::Fall);
    let mack_m = b.add_edge(mack, Polarity::Fall);
    let breq_m = b.add_edge(breq, Polarity::Fall);
    let back_m = b.add_edge(back, Polarity::Fall);
    let done_p = b.add_edge(done, Polarity::Rise);
    let req_m = b.add_edge(req, Polarity::Fall);
    let done_m = b.add_edge(done, Polarity::Fall);

    // Master request starts the memory handshake; the bus handshake starts
    // as soon as the memory acknowledges, concurrently with the memory
    // handshake being wound down.
    b.connect(req_p, mreq_p, false);
    b.connect(mreq_p, mack_p, false);
    b.connect(mack_p, breq_p, false);
    b.connect(mack_p, mreq_m, false);
    b.connect(mreq_m, mack_m, false);
    b.connect(breq_p, back_p, false);
    b.connect(back_p, breq_m, false);
    b.connect(breq_m, back_m, false);
    // Completion requires both handshakes to have finished.
    b.connect(mack_m, done_p, false);
    b.connect(back_m, done_p, false);
    b.connect(done_p, req_m, false);
    b.connect(req_m, done_m, false);
    b.connect(done_m, req_p, true);
    b.build().expect("master_read_like is well-formed")
}

/// A two-way mutual-exclusion arbiter: requests `r1`/`r2` compete for a
/// shared mutex place, grants `g1`/`g2` are mutually exclusive.
///
/// CSC holds (the mutex token position is visible as `¬g1 ∧ ¬g2`), but the
/// circuit is *not* speed independent: with both requests pending and the
/// mutex free, `g1+` and `g2+` are both excited and firing one disables the
/// other.  No pure gate netlist implements this — arbitration needs a
/// metastability-resolving mutex primitive — so the model is the canonical
/// witness that gate-level verification must check output persistency, not
/// just CSC.
pub fn arbiter() -> Stg {
    let mut b = StgBuilder::new("arbiter");
    let mutex = b.add_place("mutex", true);
    for i in 1..=2u32 {
        let r = b.add_input(format!("r{i}"));
        let g = b.add_output(format!("g{i}"));
        let rp = b.add_edge(r, Polarity::Rise);
        let gp = b.add_edge(g, Polarity::Rise);
        let rm = b.add_edge(r, Polarity::Fall);
        let gm = b.add_edge(g, Polarity::Fall);
        b.connect_cycle(&[rp, gp, rm, gm]);
        // The grant takes the mutex token and the release returns it.
        b.arc_place_to_transition(mutex, gp);
        b.arc_transition_to_place(gm, mutex);
    }
    b.build().expect("arbiter is well-formed")
}

/// An `n`-stage four-phase half-buffer pipeline controller.
///
/// Stage `i` handshakes on `(r_i, a_i)`; `r_0` is the environment request
/// `rin` and every other signal is a controller output.  The ack `a_i`
/// propagates the request forward (`a_i+ → r_{i+1}+`) and may only be
/// withdrawn once the next stage has acknowledged (`a_{i+1}+ → a_i-`), the
/// standard half-buffer backpressure.  The net is a live, safe marked
/// graph.
pub fn pipeline_4ph(n: usize) -> Stg {
    assert!(n >= 1, "pipeline needs at least one stage");
    let mut b = StgBuilder::new(format!("pipe4_{n}"));
    let mut rp = Vec::new();
    let mut ap = Vec::new();
    let mut rm = Vec::new();
    let mut am = Vec::new();
    for i in 0..n {
        let r = if i == 0 { b.add_input("rin") } else { b.add_output(format!("r{i}")) };
        let a = b.add_output(format!("a{i}"));
        rp.push(b.add_edge(r, Polarity::Rise));
        ap.push(b.add_edge(a, Polarity::Rise));
        rm.push(b.add_edge(r, Polarity::Fall));
        am.push(b.add_edge(a, Polarity::Fall));
    }
    for i in 0..n {
        b.connect_cycle(&[rp[i], ap[i], rm[i], am[i]]);
        if i + 1 < n {
            b.connect(ap[i], rp[i + 1], false);
            b.connect(ap[i + 1], am[i], false);
        }
    }
    b.build().expect("pipeline_4ph is well-formed")
}

/// An `n`-stage two-phase (transition-signalling) micropipeline: every
/// event of `x0 … xn` is one datum, `x0` driven by the environment.
///
/// Each rise wave and fall wave ripples forward (`x_i* → x_{i+1}*`), and a
/// stage accepts its next event only after its successor has consumed the
/// previous one (the marked `x_{i+1}* → x_i*'` backpressure places), so
/// stage `i` holds a datum exactly when `x_i ≠ x_{i+1}` — the
/// Muller-pipeline occupancy rule.  The net is a live, safe marked graph
/// and persistent, so the derived netlist is a speed-independent C-element
/// chain.
pub fn pipeline_2ph(n: usize) -> Stg {
    assert!(n >= 1, "pipeline needs at least one stage");
    let mut b = StgBuilder::new(format!("pipe2_{n}"));
    let mut up = Vec::new();
    let mut dn = Vec::new();
    for i in 0..=n {
        let s = if i == 0 { b.add_input("x0") } else { b.add_output(format!("x{i}")) };
        up.push(b.add_edge(s, Polarity::Rise));
        dn.push(b.add_edge(s, Polarity::Fall));
    }
    for i in 0..n {
        // Waves ripple forward …
        b.connect(up[i], up[i + 1], false);
        b.connect(dn[i], dn[i + 1], false);
        // … and each stage has capacity one: its next event waits for the
        // successor to consume the previous one.
        b.connect(up[i + 1], dn[i], false);
        b.connect(dn[i + 1], up[i], true);
    }
    b.build().expect("pipeline_2ph is well-formed")
}

/// A four-phase handshake paced by a two-phase toggle: each round is
/// `r+ ; a+ ; r- ; a- ; t~`, and the period spans two rounds so `t` is
/// consistent.
///
/// The code `(r, a) = (0, 0)` occurs both right after `a-` (with the
/// output toggle `t~` excited) and right after `t~` (waiting for the
/// input `r+`), in both phases of `t` — so CSC fails on two state pairs
/// and a state signal must be inserted.  The smallest mixed
/// two-/four-phase encoding benchmark in the corpus.
pub fn mixed_handshake() -> Stg {
    let mut b = StgBuilder::new("mixed_handshake");
    let r = b.add_input("r");
    let a = b.add_output("a");
    let t = b.add_output("t");
    let mut cycle = Vec::new();
    for _ in 0..2 {
        cycle.push(b.add_edge(r, Polarity::Rise));
        cycle.push(b.add_edge(a, Polarity::Rise));
        cycle.push(b.add_edge(r, Polarity::Fall));
        cycle.push(b.add_edge(a, Polarity::Fall));
        cycle.push(b.add_edge(t, Polarity::Toggle));
    }
    b.connect_cycle(&cycle);
    b.build().expect("mixed_handshake is well-formed")
}

/// All named (non-scalable) benchmarks with their expected CSC status,
/// as `(name, model, csc_holds)` triples.  Used by the Table 2 harness.
pub fn table2_suite() -> Vec<(&'static str, Stg, bool)> {
    vec![
        ("handshake", handshake(), true),
        ("pulser", pulser(), false),
        ("vme_read", vme_read(), false),
        ("master_read_like", master_read_like(), false),
        ("seq2", sequencer(2), false),
        ("seq4", sequencer(4), false),
        ("seq8", sequencer(8), false),
        ("counter2", counter(2), false),
        ("counter4", counter(4), false),
        ("par4", parallelizer(4), true),
        ("par_hs2", parallel_handshakes(2), true),
        ("pulser_bank2", pulser_bank(2), false),
    ]
}

/// The gate-level corpus: controllers from the asynchronous-design
/// literature that stress the netlist back-end in qualitatively different
/// ways — arbitration (not speed independent), four-phase and two-phase
/// pipelining (speed independent, C-element rich), and a mixed-protocol
/// handshake with a genuine CSC conflict.
///
/// Returned as `(name, model, csc_holds)` triples like [`table2_suite`].
pub fn corpus_suite() -> Vec<(&'static str, Stg, bool)> {
    vec![
        ("arbiter", arbiter(), true),
        ("pipe4_3", pipeline_4ph(3), false),
        ("pipe2_4", pipeline_2ph(4), true),
        ("mixed_handshake", mixed_handshake(), false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_and_parallelizer_satisfy_csc() {
        for stg in [handshake(), parallelizer(3)] {
            let sg = stg.state_graph(10_000).unwrap();
            assert!(sg.is_consistent(), "{}", stg.name());
            assert!(sg.complete_state_coding_holds(), "{}", stg.name());
        }
    }

    #[test]
    fn conflict_benchmarks_violate_csc() {
        for stg in [pulser(), vme_read(), sequencer(3), counter(2), master_read_like()] {
            let sg = stg.state_graph(100_000).unwrap();
            assert!(sg.is_consistent(), "{} must be consistent", stg.name());
            assert!(!sg.complete_state_coding_holds(), "{} must have CSC conflicts", stg.name());
        }
    }

    #[test]
    fn parallel_handshake_state_counts_scale_exponentially() {
        for n in 1..=4 {
            let sg = parallel_handshakes(n).state_graph(100_000).unwrap();
            assert_eq!(sg.num_states(), 4usize.pow(n as u32));
        }
    }

    #[test]
    fn pulser_bank_state_counts() {
        for n in 1..=3 {
            let sg = pulser_bank(n).state_graph(100_000).unwrap();
            assert_eq!(sg.num_states(), 6usize.pow(n as u32));
        }
    }

    #[test]
    fn parallelizer_state_counts_grow_with_width() {
        let small = parallelizer(2).state_graph(100_000).unwrap().num_states();
        let large = parallelizer(5).state_graph(100_000).unwrap().num_states();
        assert!(large > small * 4, "expected exponential growth, got {small} -> {large}");
    }

    #[test]
    fn sequencer_conflict_count_grows_quadratically() {
        let sg = sequencer(4).state_graph(10_000).unwrap();
        let groups = sg.states_by_code();
        let clash_states: usize = groups.values().filter(|v| v.len() > 1).map(|v| v.len()).sum();
        assert!(clash_states >= 4);
    }

    #[test]
    fn vme_read_shape_matches_the_textbook() {
        let stg = vme_read();
        assert_eq!(stg.num_signals(), 5);
        assert_eq!(stg.net().num_transitions(), 10);
        let sg = stg.state_graph(10_000).unwrap();
        assert!(sg.num_states() >= 10 && sg.num_states() <= 40);
        assert!(!sg.unique_state_coding_holds());
    }

    #[test]
    fn table2_suite_flags_are_correct() {
        for (name, stg, csc_holds) in table2_suite() {
            let sg = stg.state_graph(200_000).unwrap();
            assert_eq!(sg.complete_state_coding_holds(), csc_holds, "benchmark {name}");
        }
    }
}
