//! Equivalence tests of the symbolic CSC solver against the explicit
//! pipeline:
//!
//! * on the Table 2 suite, both solvers reach a conflict-free encoding and
//!   the symbolic solver never inserts more state signals than the
//!   explicit one,
//! * the encoded STG preserves the observable behaviour (hiding the
//!   inserted signals restores the original traces) and stays consistent —
//!   checked against the ground-truth explicit state graph, which is still
//!   buildable for these models,
//! * on randomized STGs the symbolic-first flow reaches CSC-freedom
//!   whenever the explicit flow does,
//! * a conflicted design with more than 64 signals — impossible for the
//!   explicit solver even to represent — is solved to CSC-freedom end to
//!   end.

use csc::{solve_stg, solve_stg_symbolic, SolverConfig, SolverStrategy};
use stg::{benchmarks, Polarity, SignalKind, StgBuilder};
use synthkit::{run_flow, FlowOptions};
use ts::traces::projected_trace_equivalent;

#[test]
fn symbolic_solver_matches_or_beats_explicit_on_the_table2_suite() {
    let config = SolverConfig::default();
    for (name, model, csc_holds) in benchmarks::table2_suite() {
        if csc_holds {
            let solution = solve_stg_symbolic(&model, &config)
                .unwrap_or_else(|e| panic!("{name}: conflict-free model failed: {e}"));
            assert!(solution.inserted_signals.is_empty(), "{name}: no insertion needed");
            continue;
        }
        let explicit = solve_stg(&model, &config)
            .unwrap_or_else(|e| panic!("{name}: explicit solver failed: {e}"));
        let symbolic = solve_stg_symbolic(&model, &config)
            .unwrap_or_else(|e| panic!("{name}: symbolic solver failed: {e}"));
        assert!(
            symbolic.inserted_signals.len() <= explicit.inserted_signals.len(),
            "{name}: symbolic inserted {} signals, explicit {}",
            symbolic.inserted_signals.len(),
            explicit.inserted_signals.len()
        );
        // Ground truth on the explicit state graph of the encoded STG:
        // conflict-free, consistent, and observably equivalent.
        let original = model.state_graph(1_000_000).unwrap();
        let encoded = symbolic.stg.state_graph(1_000_000).unwrap();
        assert!(encoded.complete_state_coding_holds(), "{name}: CSC must hold");
        assert!(encoded.is_consistent(), "{name}: encoding must be consistent");
        let hidden: Vec<String> = symbolic
            .inserted_signals
            .iter()
            .flat_map(|n| [format!("{n}+"), format!("{n}-")])
            .collect();
        let hidden_refs: Vec<&str> = hidden.iter().map(String::as_str).collect();
        assert!(
            projected_trace_equivalent(&original.ts, &encoded.ts, &hidden_refs),
            "{name}: hiding {hidden:?} must restore the original behaviour"
        );
        // The symbolic CSC check agrees with the explicit one.
        assert!(!symbolic.stg.symbolic_csc_violation(0), "{name}");
    }
}

/// SplitMix64 — the same tiny deterministic generator the property suite
/// uses, so failures are reproducible from the printed seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e3779b97f4a7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A random ring of `2n` alternating input/output pulses with extra
/// cross-coupling places (the property suite's generator).
fn random_stg(num_pairs: usize, couplings: &[(usize, usize)]) -> stg::Stg {
    let mut b = StgBuilder::new("random");
    let mut edges = Vec::new();
    for i in 0..num_pairs {
        let input = b.add_signal(format!("i{i}"), SignalKind::Input);
        let output = b.add_signal(format!("o{i}"), SignalKind::Output);
        edges.push(b.add_edge(input, Polarity::Rise));
        edges.push(b.add_edge(output, Polarity::Rise));
        edges.push(b.add_edge(input, Polarity::Fall));
        edges.push(b.add_edge(output, Polarity::Fall));
    }
    b.connect_cycle(&edges);
    for &(from, to) in couplings {
        let from_index = (from * 4 + 3) % edges.len();
        let to_index = (to * 4) % edges.len();
        if edges[from_index] != edges[to_index] {
            b.connect(edges[from_index], edges[to_index], to_index <= from_index);
        }
    }
    b.build().expect("random STG is structurally valid")
}

#[test]
fn symbolic_flow_solves_whatever_the_explicit_flow_solves_on_random_stgs() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let num_pairs = rng.range(1, 4);
        let couplings: Vec<(usize, usize)> =
            (0..rng.range(0, 3)).map(|_| (rng.range(0, 4), rng.range(0, 4))).collect();
        let model = random_stg(num_pairs, &couplings);
        if model.state_graph(200_000).is_err() {
            continue; // deadlocked generator output; nothing to solve
        }
        let explicit = run_flow(
            &model,
            &FlowOptions { strategy: SolverStrategy::Explicit, ..FlowOptions::default() },
        );
        let Ok(explicit) = explicit else {
            continue; // the explicit flow cannot solve it either
        };
        // The symbolic-first flow must reach the same conflict-free result
        // (it may fall back to the explicit pipeline on a typed failure,
        // which is part of its contract).
        let symbolic = run_flow(&model, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: symbolic flow failed: {e}"));
        assert_eq!(
            symbolic.csc_satisfied, explicit.csc_satisfied,
            "seed {seed}: flows disagree on CSC"
        );
        assert!(symbolic.csc_satisfied, "seed {seed}");
    }
}

#[test]
fn direct_symbolic_solves_on_random_stgs_are_verified() {
    // Wherever the symbolic solver itself succeeds, its encoded STG must
    // hold CSC and preserve traces — checked on the explicit state graph.
    let config = SolverConfig::default();
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let num_pairs = rng.range(1, 4);
        let couplings: Vec<(usize, usize)> =
            (0..rng.range(0, 3)).map(|_| (rng.range(0, 4), rng.range(0, 4))).collect();
        let model = random_stg(num_pairs, &couplings);
        let Ok(original) = model.state_graph(200_000) else { continue };
        if original.complete_state_coding_holds() {
            continue;
        }
        let Ok(solution) = solve_stg_symbolic(&model, &config) else {
            continue; // typed failure: the flow would fall back to explicit
        };
        let encoded = solution.stg.state_graph(1_000_000).unwrap();
        assert!(encoded.complete_state_coding_holds(), "seed {seed}");
        assert!(encoded.is_consistent(), "seed {seed}");
        let hidden: Vec<String> = solution
            .inserted_signals
            .iter()
            .flat_map(|n| [format!("{n}+"), format!("{n}-")])
            .collect();
        let hidden_refs: Vec<&str> = hidden.iter().map(String::as_str).collect();
        assert!(
            projected_trace_equivalent(&original.ts, &encoded.ts, &hidden_refs),
            "seed {seed}: traces changed"
        );
    }
}

#[test]
fn wide_conflicted_designs_are_solved_beyond_the_explicit_limit() {
    // 66 signals: the explicit state graph cannot even represent the codes
    // (u64), while the symbolic flow detects the pulser component's CSC
    // conflict and resolves it end to end.
    let model = benchmarks::wide_conflict(32);
    assert_eq!(model.num_signals(), 66);
    assert!(
        model.state_graph(1_000_000).is_err(),
        "the explicit engine must reject a 66-signal model"
    );
    assert!(model.symbolic_csc_violation(0), "the pulser component conflicts");

    let report = run_flow(&model, &FlowOptions::default()).unwrap();
    assert!(report.fully_symbolic, "no explicit state graph anywhere");
    assert!(report.csc_satisfied);
    assert_eq!(report.solver_strategy, SolverStrategy::Symbolic);
    assert!(report.inserted_signals >= 1);
    assert!(report.states_f64 > 1e19, "6·4^32 reachable states");
    assert!(report.literals.unwrap() > 0, "logic is derived for all 33+ functions");
}
