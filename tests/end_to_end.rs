//! End-to-end integration tests: STG → state graph → CSC resolution →
//! verification → logic derivation, across the whole benchmark suite.

use csc::{solve_stg, verify_solution, CandidateSource, SolverConfig, VerifyDiagnostic};
use logic::{
    derive_next_state_functions_with, estimate_area, output_persistency_violations, Cover, Literal,
    LogicStrategy,
};
use synthkit::{run_flow, FlowOptions};

#[test]
fn every_table2_benchmark_is_solved_and_verified() {
    let config = SolverConfig::default();
    for (name, model, csc_holds) in stg::benchmarks::table2_suite() {
        let sg = model.state_graph(500_000).expect(name);
        let solution = solve_stg(&model, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        if csc_holds {
            assert!(solution.inserted_signals.is_empty(), "{name} needs no insertion");
        } else {
            assert!(!solution.inserted_signals.is_empty(), "{name} must need insertions");
        }
        assert!(solution.graph.complete_state_coding_holds(), "{name}");
        let problems = verify_solution(&sg, &solution);
        assert!(problems.is_empty(), "{name}: {problems:?}");
    }
}

#[test]
fn verification_diagnostics_are_typed_categories() {
    // A deliberately broken "solution" must be reported through the typed
    // diagnostic categories rather than free-form strings: reusing the
    // *original* unsolved graph as the solution leaves the CSC conflicts in
    // place, which the verifier must classify as `CscConflictsRemain`.
    let model = stg::benchmarks::pulser();
    let sg = model.state_graph(100_000).unwrap();
    let mut solution = solve_stg(&model, &SolverConfig::default()).unwrap();
    solution.graph = csc::EncodedGraph::from_state_graph(&sg);
    solution.inserted_signals.clear();
    let problems = verify_solution(&sg, &solution);
    assert!(problems.contains(&VerifyDiagnostic::CscConflictsRemain));
    assert!(
        !problems.contains(&VerifyDiagnostic::ObservableTracesChanged),
        "the original graph trivially preserves its own traces"
    );
    for p in &problems {
        assert!(!p.to_string().is_empty(), "every diagnostic renders a message");
    }
}

#[test]
fn solved_benchmarks_have_implementable_logic() {
    let config = SolverConfig::default();
    for (name, model, _) in stg::benchmarks::table2_suite() {
        let solution = solve_stg(&model, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let area = estimate_area(&solution.graph).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(area.total_literals > 0, "{name} must have some logic");
        assert!(
            output_persistency_violations(&solution.graph).is_empty(),
            "{name} lost output persistency"
        );
    }
}

/// The BDD of a cover over `n` variables — the exact-comparison vehicle for
/// the strategy-equivalence tests.
fn cover_bdd(m: &mut bdd::BddManager, cover: &Cover, n: usize) -> bdd::Bdd {
    let mut acc = m.bottom();
    for cube in cover.cubes() {
        let lits: Vec<(bdd::VarId, bool)> = (0..n)
            .filter_map(|i| match cube.literal(i) {
                Literal::One => Some((i as bdd::VarId, true)),
                Literal::Zero => Some((i as bdd::VarId, false)),
                Literal::DontCare => None,
            })
            .collect();
        let c = m.cube_of(&lits);
        acc = m.or(acc, c);
    }
    acc
}

#[test]
fn logic_strategies_are_equivalent_on_the_table2_suite() {
    // The acceptance bar of the symbolic back-end: identical ON/OFF-set
    // semantics per signal and never more literals than the explicit engine,
    // across the whole Table 2 suite (on the solved graphs, where the
    // functions are well-defined).
    let config = SolverConfig::default();
    for (name, model, _) in stg::benchmarks::table2_suite() {
        let solution = solve_stg(&model, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let explicit =
            derive_next_state_functions_with(&solution.graph, LogicStrategy::Explicit).unwrap();
        let symbolic =
            derive_next_state_functions_with(&solution.graph, LogicStrategy::Symbolic).unwrap();
        assert_eq!(explicit.functions.len(), symbolic.functions.len(), "{name}");
        let n = explicit.num_variables;
        assert_eq!(n, symbolic.num_variables, "{name}");
        let mut m = bdd::BddManager::new(n);
        for (e, s) in explicit.functions.iter().zip(&symbolic.functions) {
            assert_eq!(e.signal, s.signal, "{name}");
            // Exact set equality of the ON/OFF semantics, via canonical BDDs.
            let e_on = cover_bdd(&mut m, &e.on_set, n);
            let s_on = cover_bdd(&mut m, &s.on_set, n);
            assert_eq!(e_on, s_on, "{name}/{}: ON sets differ", e.name);
            let e_off = cover_bdd(&mut m, &e.off_set, n);
            let s_off = cover_bdd(&mut m, &s.off_set, n);
            assert_eq!(e_off, s_off, "{name}/{}: OFF sets differ", e.name);
            // Both minimized covers implement the incompletely specified
            // function: they contain the ON-set and avoid the OFF-set.
            for (label, min) in [("explicit", &e.minimized), ("symbolic", &s.minimized)] {
                let min_bdd = cover_bdd(&mut m, min, n);
                assert!(m.implies(e_on, min_bdd), "{name}/{}: {label} cover lost ON", e.name);
                let overlap = m.and(min_bdd, e_off);
                assert!(overlap.is_false(), "{name}/{}: {label} cover hits OFF", e.name);
            }
            assert!(
                s.literals() <= e.literals(),
                "{name}/{}: symbolic needs {} literals, explicit {}",
                e.name,
                s.literals(),
                e.literals()
            );
        }
        assert!(symbolic.total_literals() <= explicit.total_literals(), "{name}");
    }
}

#[test]
fn wide_designs_synthesize_end_to_end_through_the_symbolic_path() {
    // 80 signals and 4^40 states: the explicit engine cannot even represent
    // the codes; the default flow must synthesize it fully symbolically.
    let model = stg::benchmarks::parallel_handshakes(40);
    let report = run_flow(&model, &FlowOptions::default()).unwrap();
    assert!(report.fully_symbolic);
    assert!(report.csc_satisfied);
    assert_eq!(report.signals, 80);
    assert_eq!(report.inserted_signals, 0);
    assert_eq!(report.literals.unwrap(), 40, "each ack is a single req literal");
    assert_eq!(report.cubes.unwrap(), 40);
    assert!(report.states_f64 > 1e24, "4^40 markings");
    // The explicit strategy must refuse the same model rather than lie.
    let explicit =
        run_flow(&model, &FlowOptions { logic: LogicStrategy::Explicit, ..FlowOptions::default() });
    assert!(explicit.is_err(), "explicit path cannot encode 80 signals");
}

#[test]
fn region_method_never_does_worse_than_baseline_on_solved_models() {
    // The comparison axis of Table 2: the region-based method explores a
    // larger candidate space, so whenever the ER-only baseline solves a
    // model the region-based method must solve it too (the converse need not
    // hold).
    for (name, model, _) in stg::benchmarks::table2_suite() {
        let baseline = solve_stg(&model, &SolverConfig::excitation_region_baseline());
        let region = solve_stg(&model, &SolverConfig::default());
        if baseline.is_ok() {
            assert!(region.is_ok(), "{name}: baseline solved but the region method failed");
        }
        assert!(region.is_ok(), "{name}: region-based method must always succeed");
    }
}

#[test]
fn flow_reports_are_consistent_with_the_solver() {
    let report = run_flow(&stg::benchmarks::vme_read(), &FlowOptions::default()).unwrap();
    assert!(report.csc_satisfied);
    assert_eq!(report.signals, 5);
    assert!(report.final_states >= report.states);
    assert!(report.literals.unwrap() > 0);
    assert!(report.cpu_seconds >= 0.0);
}

#[test]
fn frontier_width_one_still_solves_the_core_benchmarks() {
    let config = SolverConfig { frontier_width: 1, ..SolverConfig::default() };
    for model in [stg::benchmarks::pulser(), stg::benchmarks::vme_read()] {
        let solution = solve_stg(&model, &config).unwrap();
        assert!(solution.graph.complete_state_coding_holds());
    }
}

#[test]
fn candidate_source_is_honoured() {
    let config = SolverConfig {
        candidate_source: CandidateSource::ExcitationRegions,
        ..SolverConfig::default()
    };
    // The baseline either solves the pulser or reports a structured error;
    // it must not panic and must not silently return an unsolved graph.
    match solve_stg(&stg::benchmarks::pulser(), &config) {
        Ok(solution) => assert!(solution.graph.complete_state_coding_holds()),
        Err(e) => {
            let text = e.to_string();
            assert!(!text.is_empty());
        }
    }
}

#[test]
fn scalable_generators_compose_with_the_solver() {
    let config = SolverConfig::default();
    for n in [2, 3] {
        let model = stg::benchmarks::pulser_bank(n);
        let solution = solve_stg(&model, &config).unwrap();
        assert!(solution.graph.complete_state_coding_holds(), "pulser_bank({n})");
        assert!(
            solution.inserted_signals.len() >= n,
            "each of the {n} banks needs at least one state signal"
        );
    }
}
