//! Integration tests of the `.g` reader/writer against the benchmark suite
//! and the symbolic engine against the explicit one.

use stg::parse_g;

#[test]
fn every_benchmark_round_trips_through_g_format() {
    for (name, model, _) in stg::benchmarks::table2_suite() {
        let text = model.to_g();
        let reparsed = parse_g(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(model.num_signals(), reparsed.num_signals(), "{name}");
        assert_eq!(model.net().num_transitions(), reparsed.net().num_transitions(), "{name}");
        let sg1 = model.state_graph(500_000).unwrap();
        let sg2 = reparsed.state_graph(500_000).unwrap();
        assert_eq!(sg1.num_states(), sg2.num_states(), "{name}");
        assert_eq!(sg1.complete_state_coding_holds(), sg2.complete_state_coding_holds(), "{name}");
        assert_eq!(sg1.unique_state_coding_holds(), sg2.unique_state_coding_holds(), "{name}");
    }
}

#[test]
fn symbolic_and_explicit_engines_agree_on_the_suite() {
    for (name, model, csc_holds) in stg::benchmarks::table2_suite() {
        let explicit = model.state_graph(500_000).unwrap();
        let space = model.symbolic_state_space(None);
        assert!(space.converged, "{name}");
        assert_eq!(space.state_count(), explicit.num_states() as u128, "{name}");
        assert_eq!(!model.symbolic_csc_violation(0), csc_holds, "{name}");
    }
}

#[test]
fn symbolic_engine_counts_beyond_explicit_reach() {
    // 4^14 ≈ 268 million markings — far beyond explicit enumeration, yet the
    // BDD stays small.  This is the Table 1 capability claim.
    let model = stg::benchmarks::parallel_handshakes(14);
    let space = model.symbolic_state_space(None);
    assert!(space.converged);
    assert_eq!(space.state_count(), 4u128.pow(14));
    assert!(space.bdd_size() < 20_000);
}

#[test]
fn written_g_files_can_be_consumed_by_the_cli_parser_path() {
    let model = stg::benchmarks::vme_read();
    let text = model.to_g();
    assert!(text.contains(".inputs dsr ldtack"));
    assert!(text.contains(".outputs lds d dtack"));
    let reparsed = parse_g(&text).unwrap();
    assert_eq!(reparsed.name(), "vme_read");
}
