//! Golden-report tests for the gate-level corpus, and the closed-loop
//! acceptance sweep: every Table 2 design and every corpus controller must
//! emit a `.eqn` and a Verilog netlist, and the symbolic circuit verifier
//! must reproduce the expected verdict — speed independent and
//! trace-equivalent everywhere except the arbiter, whose grant conflict no
//! pure gate netlist can implement.

use netlist::NetlistDiagnostic;
use stg::benchmarks;
use synthkit::{run_flow, FlowOptions, FlowReport, NetlistVerdict};

fn verified_flow(model: &stg::Stg) -> FlowReport {
    let options = FlowOptions { verify_netlist: true, ..FlowOptions::default() };
    run_flow(model, &options).expect("flow succeeds")
}

/// Golden numbers for one corpus entry, pinned from the symbolic flow.
struct Golden {
    name: &'static str,
    inserted: usize,
    logic_literals: usize,
    gates: usize,
    c_elements: usize,
    /// `None` means the netlist check must fail with this many findings.
    verified_states: Option<f64>,
    findings: usize,
}

const GOLDENS: &[Golden] = &[
    Golden {
        name: "arbiter",
        inserted: 0,
        logic_literals: 4,
        gates: 2,
        c_elements: 0,
        verified_states: None,
        findings: 2,
    },
    Golden {
        name: "pipe4_3",
        inserted: 2,
        logic_literals: 39,
        gates: 7,
        c_elements: 7,
        verified_states: Some(151.0),
        findings: 0,
    },
    Golden {
        name: "pipe2_4",
        inserted: 0,
        logic_literals: 19,
        gates: 4,
        c_elements: 3,
        verified_states: Some(32.0),
        findings: 0,
    },
    Golden {
        name: "mixed_handshake",
        inserted: 1,
        logic_literals: 18,
        gates: 3,
        c_elements: 3,
        verified_states: Some(12.0),
        findings: 0,
    },
];

#[test]
fn corpus_flow_reports_match_the_goldens() {
    let suite = benchmarks::corpus_suite();
    assert_eq!(suite.len(), GOLDENS.len(), "one golden per corpus entry");
    for ((name, model, _), golden) in suite.iter().zip(GOLDENS) {
        assert_eq!(*name, golden.name, "suite order matches the goldens");
        let report = verified_flow(model);
        assert_eq!(report.inserted_signals, golden.inserted, "{name}: inserted signals");
        assert_eq!(report.literals, Some(golden.logic_literals), "{name}: logic literals");
        let stage = report.netlist.as_ref().unwrap_or_else(|| panic!("{name}: netlist stage"));
        assert_eq!(stage.gates, golden.gates, "{name}: gate count");
        assert_eq!(stage.c_elements, golden.c_elements, "{name}: C-element count");
        match (&stage.verdict, golden.verified_states) {
            (NetlistVerdict::Verified { states_f64 }, Some(expected)) => {
                assert_eq!(*states_f64, expected, "{name}: verified state count");
            }
            (NetlistVerdict::Failed { diagnostics }, None) => {
                assert_eq!(diagnostics.len(), golden.findings, "{name}: finding count");
            }
            (verdict, _) => panic!("{name}: unexpected netlist verdict {verdict:?}"),
        }
    }
}

#[test]
fn corpus_csc_flags_match_the_state_graph() {
    for (name, model, csc_holds) in benchmarks::corpus_suite() {
        let sg = model.state_graph(1_000_000).expect("corpus models are explicit-size");
        assert!(sg.is_consistent(), "{name} must be consistent");
        assert_eq!(sg.complete_state_coding_holds(), csc_holds, "{name}: CSC flag");
    }
}

#[test]
fn arbiter_grant_conflict_is_reported_as_a_hazard_with_witness() {
    let report = verified_flow(&benchmarks::arbiter());
    let stage = report.netlist.expect("netlist stage present");
    let NetlistVerdict::Failed { diagnostics } = &stage.verdict else {
        panic!("the arbiter must fail speed-independence, got {:?}", stage.verdict);
    };
    let mut hazarded: Vec<&str> = diagnostics
        .iter()
        .map(|d| match d {
            NetlistDiagnostic::HazardNotPersistent { signal, disabled_by, code } => {
                // The witness pins the contended state: both requests high,
                // both grants low, the rival grant firing.
                assert!(disabled_by.starts_with('g'), "disabled by a grant, got {disabled_by}");
                assert_eq!(code.matches('1').count(), 2, "witness code {code}");
                signal.as_str()
            }
            other => panic!("expected a hazard finding, got {other:?}"),
        })
        .collect();
    hazarded.sort_unstable();
    assert_eq!(hazarded, ["g1", "g2"]);
}

#[test]
fn two_phase_pipeline_is_a_muller_c_element_chain() {
    let report = verified_flow(&benchmarks::pipeline_2ph(4));
    let stage = report.netlist.expect("netlist stage present");
    // Interior stages are C-elements C(x_{i-1}, !x_{i+1}); the last stage
    // degenerates to a wire from its predecessor.
    assert_eq!(stage.c_elements, 3);
    let eqn = stage.circuit.to_eqn();
    assert!(eqn.contains("x1 = C(x0 & !x2 ; !x0 & x2);"), "{eqn}");
    assert!(eqn.contains("x4 = x3;"), "{eqn}");
}

/// The acceptance sweep: every Table 2 design and every corpus model goes
/// through synthesis, both emission formats, re-parsing, and the symbolic
/// circuit verifier.  Only the arbiter may fail the check, and it must
/// fail with a witness-carrying diagnostic rather than a panic or error.
#[test]
fn every_benchmark_emits_and_verifies() {
    let mut suite = benchmarks::table2_suite();
    suite.extend(benchmarks::corpus_suite());
    for (name, model, _) in suite {
        let report = verified_flow(&model);
        let stage = report
            .netlist
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: netlist synthesis must succeed"));
        let eqn = stage.circuit.to_eqn();
        assert!(eqn.contains(".model"), "{name}: .eqn emission");
        let verilog = stage.circuit.to_verilog();
        assert!(verilog.contains("module"), "{name}: Verilog emission");
        let reparsed = netlist::parse_eqn(&eqn)
            .unwrap_or_else(|e| panic!("{name}: emitted .eqn must re-parse: {e}"));
        assert!(
            netlist::equivalent(&stage.circuit, &reparsed).expect("equivalence check runs"),
            "{name}: emitted .eqn round-trips to the same circuit"
        );
        match &stage.verdict {
            NetlistVerdict::Verified { states_f64 } => {
                assert!(*states_f64 >= 1.0, "{name}: verified over a non-empty space");
            }
            NetlistVerdict::Failed { diagnostics } => {
                assert_eq!(name, "arbiter", "only the arbiter may fail: {diagnostics:?}");
                assert!(!diagnostics.is_empty(), "failures carry witnesses");
            }
            verdict => panic!("{name}: unexpected verdict {verdict:?}"),
        }
    }
}
