//! Round-trip property: an emitted `.eqn` file, parsed back, denotes the
//! same Boolean functions as the source covers — checked by canonical BDD
//! equivalence per gate, over the named benchmark suites and a sweep of
//! fuzzed STGs.  The oracle itself is exercised negatively: a mangled
//! equation must be detected as non-equivalent.

use stg::benchmarks;
use stg::fuzz::random_stg;

/// Synthesizes a netlist straight from an STG's next-state covers, or
/// `None` when the model has no implementable covers (CSC conflicts).
fn synthesized(model: &stg::Stg) -> Option<netlist::Netlist> {
    let functions = logic::derive_next_state_functions_stg(model, 0, None).ok()?;
    Some(netlist::synthesize(model, &functions).expect("synthesis from derived covers"))
}

fn assert_round_trips(name: &str, circuit: &netlist::Netlist) {
    let eqn = circuit.to_eqn();
    let reparsed =
        netlist::parse_eqn(&eqn).unwrap_or_else(|e| panic!("{name}: emitted .eqn re-parses: {e}"));
    assert_eq!(reparsed.name, circuit.name, "{name}: model name survives");
    assert_eq!(reparsed.gates.len(), circuit.gates.len(), "{name}: gate count survives");
    assert!(
        netlist::equivalent(circuit, &reparsed).expect("equivalence check runs"),
        "{name}: parsed .eqn is not BDD-equivalent to the source covers"
    );
}

#[test]
fn named_benchmarks_round_trip_through_eqn() {
    let mut suite = benchmarks::table2_suite();
    suite.extend(benchmarks::corpus_suite());
    let mut checked = 0;
    for (name, model, csc_holds) in suite {
        let Some(circuit) = synthesized(&model) else {
            assert!(!csc_holds, "{name}: CSC holds but the covers were not derivable");
            continue;
        };
        assert_round_trips(name, &circuit);
        checked += 1;
    }
    assert!(checked >= 5, "the suite must contain several CSC-clean models, got {checked}");
}

#[test]
fn fuzzed_models_round_trip_through_eqn() {
    let seeds: u64 =
        std::env::var("RSYNTH_FUZZ_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
    let mut checked = 0;
    for seed in 0..seeds {
        let model = random_stg(seed);
        let Some(circuit) = synthesized(&model) else { continue };
        assert_round_trips(&format!("seed {seed}"), &circuit);
        checked += 1;
    }
    // Most fuzzed models carry CSC conflicts; a tenth of the sweep is
    // still a meaningful property-test population.
    assert!(checked >= seeds / 10, "too few CSC-free fuzzed models round-tripped: {checked}");
}

#[test]
fn the_equivalence_oracle_detects_a_mangled_cover() {
    let model = benchmarks::pipeline_2ph(3);
    let circuit = synthesized(&model).expect("the 2-phase pipeline is CSC-clean");
    let eqn = circuit.to_eqn();
    // Swap the polarity of one literal: `x0 &` becomes `!x0 &` in the
    // first C-element's set cover.
    let mangled = eqn.replacen("C(x0 &", "C(!x0 &", 1);
    assert_ne!(mangled, eqn, "the mangling must apply");
    let reparsed = netlist::parse_eqn(&mangled).expect("mangled text still parses");
    assert!(
        !netlist::equivalent(&circuit, &reparsed).expect("equivalence check runs"),
        "a flipped literal must be detected as non-equivalent"
    );
}
