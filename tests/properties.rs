//! Property-based tests of the core invariants:
//!
//! * regions are speed-independence-preserving sets (Property 3.1, P1),
//! * event insertion over a region preserves observable traces,
//! * state-set algebra is a Boolean algebra,
//! * randomly generated marked-graph STGs have consistent state graphs and
//!   agree between the explicit and the symbolic engine,
//! * the CSC solver, when it succeeds, always produces a conflict-free,
//!   deterministic, trace-equivalent encoding.

use csc::{solve_stg, SolverConfig};
use proptest::prelude::*;
use regions::{is_region, is_sip_set, minimal_regions, RegionConfig};
use stg::{Polarity, StgBuilder};
use ts::traces::projected_trace_equivalent;
use ts::{insert_event, InsertionStyle, StateId, StateSet, TransitionSystem};

/// A random ring of `2n` alternating input/output pulses with extra
/// cross-coupling places, always safe and consistent.
fn random_stg(num_pairs: usize, couplings: &[(usize, usize)]) -> stg::Stg {
    let mut b = StgBuilder::new("random");
    let mut edges = Vec::new();
    for i in 0..num_pairs {
        let input = b.add_input(format!("i{i}"));
        let output = b.add_output(format!("o{i}"));
        edges.push(b.add_edge(input, Polarity::Rise));
        edges.push(b.add_edge(output, Polarity::Rise));
        edges.push(b.add_edge(input, Polarity::Fall));
        edges.push(b.add_edge(output, Polarity::Fall));
    }
    b.connect_cycle(&edges);
    // Extra coupling places between pulse pairs add concurrency constraints.
    // The place carries an initial token only when its consumer precedes its
    // producer in the ring order, which keeps the net 1-safe.
    for &(from, to) in couplings {
        let from_index = (from * 4 + 3) % edges.len();
        let to_index = (to * 4) % edges.len();
        if edges[from_index] != edges[to_index] {
            b.connect(edges[from_index], edges[to_index], to_index <= from_index);
        }
    }
    b.build().expect("random STG is structurally valid")
}

fn ring_ts(n: usize) -> TransitionSystem {
    let mut b = ts::TransitionSystemBuilder::new();
    let states: Vec<StateId> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
    for i in 0..n {
        b.add_transition(states[i], format!("e{i}"), states[(i + 1) % n]);
    }
    b.build(states[0]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn state_set_algebra_laws(members_a in prop::collection::vec(0u32..64, 0..20),
                              members_b in prop::collection::vec(0u32..64, 0..20)) {
        let a = StateSet::from_states(64, members_a.iter().map(|&i| StateId(i)));
        let b = StateSet::from_states(64, members_b.iter().map(|&i| StateId(i)));
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.union(&b).complement(), a.complement().intersection(&b.complement()));
        prop_assert_eq!(a.difference(&b), a.intersection(&b.complement()));
        prop_assert!(a.intersection(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
        prop_assert_eq!(a.union(&b).len() + a.intersection(&b).len(), a.len() + b.len());
    }

    #[test]
    fn ring_arcs_are_regions_and_sip_sets(ring_len in 3usize..10, start in 0usize..10, len in 1usize..8) {
        let ts = ring_ts(ring_len);
        let len = len.min(ring_len - 1);
        let start = start % ring_len;
        let states = (0..len).map(|k| StateId(((start + k) % ring_len) as u32));
        let arc = StateSet::from_states(ring_len, states);
        // In a ring with distinct labels every contiguous arc is a region…
        prop_assert!(is_region(&ts, &arc));
        // …and regions of deterministic commutative systems are SIP sets.
        prop_assert!(is_sip_set(&ts, &arc));
    }

    #[test]
    fn insertion_over_regions_preserves_observable_traces(ring_len in 3usize..9, start in 0usize..9, len in 1usize..6) {
        let ts = ring_ts(ring_len);
        let len = len.min(ring_len - 1);
        let start = start % ring_len;
        let states = (0..len).map(|k| StateId(((start + k) % ring_len) as u32));
        let arc = StateSet::from_states(ring_len, states);
        let outcome = insert_event(&ts, &arc, "probe", InsertionStyle::Concurrent).unwrap();
        prop_assert!(outcome.ts.is_deterministic());
        prop_assert!(outcome.ts.is_commutative());
        prop_assert!(projected_trace_equivalent(&ts, &outcome.ts, &["probe"]));
        prop_assert_eq!(outcome.ts.num_states(), ring_len + arc.len());
    }

    #[test]
    fn minimal_regions_of_rings_are_regions(ring_len in 2usize..9) {
        let ts = ring_ts(ring_len);
        let regions = minimal_regions(&ts, &RegionConfig::default());
        prop_assert!(!regions.is_empty());
        for r in &regions {
            prop_assert!(is_region(&ts, r));
            prop_assert!(!r.is_empty());
        }
    }

    #[test]
    fn random_stgs_are_consistent_and_engines_agree(
        num_pairs in 1usize..4,
        couplings in prop::collection::vec((0usize..4, 0usize..4), 0..3),
    ) {
        let model = random_stg(num_pairs, &couplings);
        match model.state_graph(200_000) {
            Ok(sg) => {
                prop_assert!(sg.is_consistent());
                let space = model.symbolic_state_space(None);
                prop_assert!(space.converged);
                prop_assert_eq!(space.state_count(), sg.num_states() as u128);
            }
            Err(stg::StgError::Net(petri::PetriError::DeadInitialMarking)) => {
                // Some couplings deadlock the ring; that is a legal outcome
                // for the generator, not a property violation.
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
        }
    }

    #[test]
    fn solver_results_are_always_verified(num_pairs in 1usize..3, extra in 0usize..2) {
        // Compose a pulser bank with a few handshakes: conflicts guaranteed,
        // solvable, modest size.
        let _ = extra;
        let model = stg::benchmarks::pulser_bank(num_pairs);
        let sg = model.state_graph(200_000).unwrap();
        let solution = solve_stg(&model, &SolverConfig::default()).unwrap();
        prop_assert!(solution.graph.complete_state_coding_holds());
        let problems = csc::verify_solution(&sg, &solution);
        prop_assert!(problems.is_empty(), "{:?}", problems);
    }
}
