//! Smoke test for the narrated examples: `csc_walkthrough` is included
//! *as source* and its `main` is executed, so the tutorial can never
//! silently rot — if a stage it narrates starts failing, `cargo test`
//! fails with it.

#[path = "../examples/csc_walkthrough.rs"]
mod csc_walkthrough;

#[test]
fn csc_walkthrough_runs_end_to_end() {
    csc_walkthrough::main().expect("the walkthrough must complete");
}
