//! Read an STG in `.g` format, solve CSC, and write the encoded STG back.
//!
//! Run with `cargo run -p synthkit --example gformat_roundtrip`.

use csc::{solve_stg, SolverConfig};
use stg::parse_g;

const SPEC: &str = "\
.model pulser
.inputs x
.outputs y
.graph
x+ y+
y+ y-
y- x-
x- y+/2
y+/2 y-/2
y-/2 x+
.marking { <y-/2,x+> }
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = parse_g(SPEC)?;
    println!("parsed '{}' with {} signals", model.name(), model.num_signals());

    let sg = model.state_graph(10_000)?;
    println!(
        "state graph: {} states, CSC holds: {}",
        sg.num_states(),
        sg.complete_state_coding_holds()
    );

    let solution = solve_stg(&model, &SolverConfig::default())?;
    println!("inserted signals: {:?}", solution.inserted_signals);

    match &solution.stg {
        Some(encoded) => {
            println!("\nencoded STG in .g format:\n{}", encoded.to_g());
            // The written text can be parsed again and still satisfies CSC.
            let reparsed = parse_g(&encoded.to_g())?;
            let sg2 = reparsed.state_graph(10_000)?;
            println!(
                "round trip: {} states, CSC holds: {}",
                sg2.num_states(),
                sg2.complete_state_coding_holds()
            );
        }
        None => {
            println!("the encoded state graph is not excitation closed, no STG emitted");
        }
    }
    Ok(())
}
