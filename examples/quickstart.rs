//! Quickstart: from a transition system to regions, a Petri net and a
//! CSC-encoded controller.
//!
//! Reproduces the introductory material of the paper: the transition system
//! of Fig. 1(a), its regions, a synthesized net, and then the full CSC flow
//! on the VME bus controller.
//!
//! Run with `cargo run -p synthkit --example quickstart`.

use csc::{solve_stg, SolverConfig};
use regions::{is_region, minimal_regions, synthesize_net, RegionConfig};
use ts::TransitionSystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Fig. 1(a): a small transition system with concurrency and repetition.
    // ------------------------------------------------------------------
    let mut b = TransitionSystemBuilder::new();
    let s: Vec<_> = (1..=7).map(|i| b.add_state(format!("s{i}"))).collect();
    b.add_transition(s[0], "a", s[1]);
    b.add_transition(s[0], "b", s[2]);
    b.add_transition(s[1], "b", s[3]);
    b.add_transition(s[2], "a", s[3]);
    b.add_transition(s[3], "c", s[4]);
    b.add_transition(s[4], "a", s[5]);
    b.add_transition(s[4], "b", s[6]);
    let ts = b.build(s[0])?;

    println!("Fig. 1(a) transition system: {ts}");
    let config = RegionConfig::default();
    let regions = minimal_regions(&ts, &config);
    println!("minimal pre-/post-regions found: {}", regions.len());
    for r in &regions {
        assert!(is_region(&ts, r));
        let names: Vec<&str> = r.iter().map(|st| ts.state_name(st)).collect();
        println!("  region {{{}}}", names.join(", "));
    }
    match synthesize_net(&ts, &config) {
        Ok(synth) => println!(
            "synthesized a Petri net with {} places and {} transitions",
            synth.net.num_places(),
            synth.net.num_transitions()
        ),
        Err(e) => println!("net synthesis needs label splitting here: {e}"),
    }

    // ------------------------------------------------------------------
    // The classic CSC example: the VME bus controller read cycle.
    // ------------------------------------------------------------------
    let vme = stg::benchmarks::vme_read();
    let sg = vme.state_graph(10_000)?;
    println!(
        "\nVME read controller: {} states, CSC holds: {}",
        sg.num_states(),
        sg.complete_state_coding_holds()
    );

    let solution = solve_stg(&vme, &SolverConfig::default())?;
    println!(
        "inserted {} state signal(s): {:?}",
        solution.inserted_signals.len(),
        solution.inserted_signals
    );
    println!(
        "final state graph: {} states, CSC holds: {}",
        solution.graph.num_states(),
        solution.graph.complete_state_coding_holds()
    );
    let area = logic::estimate_area(&solution.graph)?;
    println!("estimated area: {} literals", area.total_literals);
    for sig in &area.signals {
        println!("  {:8} {:3} literals in {} cubes", sig.name, sig.literals, sig.cubes);
    }
    Ok(())
}
