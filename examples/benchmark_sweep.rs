//! Sweep the benchmark suite with the region-based solver and the
//! excitation-region baseline, printing a Table-2-style comparison.
//!
//! Run with `cargo run -p synthkit --release --example benchmark_sweep`.

use synthkit::{render_table, run_flow, FlowOptions};

fn main() {
    let suite = stg::benchmarks::table2_suite();

    println!("== region-based method (the paper) ==");
    let mut region_reports = Vec::new();
    for (name, model, _) in &suite {
        match run_flow(model, &FlowOptions::default()) {
            Ok(report) => region_reports.push(report),
            Err(e) => println!("{name:<18} failed: {e}"),
        }
    }
    println!("{}", render_table(&region_reports));

    println!("== excitation-region baseline (ASSASSIN-style) ==");
    let mut baseline_reports = Vec::new();
    for (name, model, _) in &suite {
        match run_flow(model, &FlowOptions::baseline()) {
            Ok(report) => baseline_reports.push(report),
            Err(e) => println!("{name:<18} failed: {e}"),
        }
    }
    println!("{}", render_table(&baseline_reports));

    let solved_region = region_reports.iter().filter(|r| r.csc_satisfied).count();
    let solved_baseline = baseline_reports.iter().filter(|r| r.csc_satisfied).count();
    println!(
        "summary: region-based solved {solved_region}/{} models, baseline solved {solved_baseline}/{}",
        suite.len(),
        suite.len()
    );
}
