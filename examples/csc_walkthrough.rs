//! Step-by-step walkthrough of one CSC-solving iteration (the Fig. 3
//! scenario): conflict detection, brick generation, block search,
//! I-partition derivation and event insertion — then the staged
//! [`csc::SolverContext`] pipeline driving the same loop to completion.
//!
//! Run with `cargo run -p synthkit --example csc_walkthrough`.

use csc::{conflict_pairs, find_best_block, insert_state_signal, EncodedGraph, SolverContext};
use regions::{bricks, RegionConfig};
use ts::InsertionStyle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The two-signal example used throughout the paper: the output pulses
    // twice per input cycle, so two code classes are reused.
    let model = stg::benchmarks::pulser();
    let sg = model.state_graph(1_000)?;
    let graph = EncodedGraph::from_state_graph(&sg);

    println!("== specification ==");
    println!("{}", model.to_g());

    println!("== state codes (x y, * = excited) ==");
    for s in 0..graph.num_states() {
        let s = ts::StateId::from(s);
        println!(
            "  {:4}  {}  enabled: {:?}",
            graph.ts.state_name(s),
            sg.code_string(s),
            graph.ts.enabled_events(s).iter().map(|&e| graph.ts.event_name(e)).collect::<Vec<_>>()
        );
    }

    let conflicts = conflict_pairs(&graph);
    println!("\n== CSC conflicts ==");
    for c in &conflicts {
        println!(
            "  {} / {} share code {:02b} but enable different outputs",
            graph.ts.state_name(c.a),
            graph.ts.state_name(c.b),
            c.code
        );
    }

    let region_config = RegionConfig::default();
    let brick_set = bricks(&graph.ts, &region_config);
    println!("\n== bricks (candidate building blocks) ==");
    for brick in &brick_set {
        let names: Vec<&str> = brick.states.iter().map(|s| graph.ts.state_name(s)).collect();
        println!("  {:?}: {{{}}}", brick.kind, names.join(", "));
    }

    let best = find_best_block(&graph, &conflicts, &brick_set, 4)
        .expect("the pulser always has a valid insertion block");
    let partition = best.partition.clone().expect("valid candidates carry a partition");
    println!("\n== chosen block and I-partition ==");
    let show = |label: &str, set: &ts::StateSet| {
        let names: Vec<&str> = set.iter().map(|s| graph.ts.state_name(s)).collect();
        println!("  {label}: {{{}}}", names.join(", "));
    };
    show("block b (x = 1)", &partition.block);
    show("ER(x+)", &partition.er_rise);
    show("ER(x-)", &partition.er_fall);
    show("stable 1 (S1)", &partition.s1);
    show("stable 0 (S0)", &partition.s0);
    println!("  cost: {:?}", best.cost);

    let encoded = insert_state_signal(&graph, "csc0", &partition, InsertionStyle::Concurrent)?;
    println!("\n== after inserting csc0 ==");
    println!(
        "  {} states (was {}), CSC holds: {}",
        encoded.num_states(),
        graph.num_states(),
        encoded.complete_state_coding_holds()
    );
    for s in 0..encoded.num_states() {
        let s = ts::StateId::from(s);
        println!("  {:12}  code {:03b}", encoded.ts.state_name(s), encoded.code(s));
    }
    println!(
        "\nremaining conflicts: {} (the solver iterates until zero)",
        conflict_pairs(&encoded).len()
    );

    // The staged pipeline does exactly the above per iteration, maintaining
    // the conflict list incrementally after each insertion; stepping it
    // manually exposes the per-iteration state.
    println!("\n== the SolverContext pipeline, stepped to completion ==");
    let mut context = SolverContext::new(&sg, &csc::SolverConfig::default());
    while !context.is_solved() {
        let before = context.conflicts().len();
        context.step()?;
        println!(
            "  inserted {:6}  conflicts {} -> {}",
            context.inserted_signals().last().map(String::as_str).unwrap_or("-"),
            before,
            context.conflicts().len()
        );
    }
    let stats = context.stats();
    println!("  stages: {}", stats.stage);
    let solution = context.finish();
    println!("  CSC holds: {}", solution.graph.complete_state_coding_holds());
    Ok(())
}
