//! A narrated, stage-by-stage tutorial of Complete State Coding
//! resolution on the paper's running example (the Fig. 3 "pulser").
//!
//! Part 1 drives one *explicit* solver iteration by hand — conflict pair
//! found, candidate bricks, block chosen, I-partition derived, state
//! signal inserted — then lets the staged [`csc::SolverContext`] pipeline
//! run the same loop to completion.
//!
//! Part 2 repeats the whole exercise *symbolically*: the conflict is
//! detected on reachability BDDs, the state signal is inserted directly
//! into the Petri net by [`csc::solve_stg_symbolic`] (no state graph is
//! ever built), and the next-state logic is derived from the encoded STG
//! by the symbolic logic engine.
//!
//! Part 3 closes the loop to gates: the minimized covers become a
//! netlist of complex gates and generalized C-elements
//! ([`netlist::synthesize`]), emitted as `.eqn` equations, and the
//! emitted circuit is verified *against the STG it came from* by the
//! symbolic circuit checker ([`netlist::verify`]) — the same checks
//! `rsynth --emit eqn --verify-netlist` runs.
//!
//! Run with `cargo run -p synthkit --example csc_walkthrough`; the smoke
//! test in `tests/examples_smoke.rs` runs it on every `cargo test`.
//!
//! See also the "Symbolic CSC resolution" section of ARCHITECTURE.md,
//! which maps each stage printed here to the crate implementing it.

use csc::{
    conflict_pairs, find_best_block, insert_state_signal, solve_stg_symbolic, EncodedGraph,
    SolverContext,
};
use regions::{bricks, RegionConfig};
use ts::InsertionStyle;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The two-signal example used throughout the paper: the output pulses
    // twice per input cycle, so two code classes are reused.
    let model = stg::benchmarks::pulser();
    let sg = model.state_graph(1_000)?;
    let graph = EncodedGraph::from_state_graph(&sg);

    println!("== specification ==");
    println!("{}", model.to_g());

    println!("== state codes (x y, * = excited) ==");
    for s in 0..graph.num_states() {
        let s = ts::StateId::from(s);
        println!(
            "  {:4}  {}  enabled: {:?}",
            graph.ts.state_name(s),
            sg.code_string(s),
            graph.ts.enabled_events(s).iter().map(|&e| graph.ts.event_name(e)).collect::<Vec<_>>()
        );
    }

    let conflicts = conflict_pairs(&graph);
    println!("\n== CSC conflicts ==");
    for c in &conflicts {
        println!(
            "  {} / {} share code {:02b} but enable different outputs",
            graph.ts.state_name(c.a),
            graph.ts.state_name(c.b),
            c.code
        );
    }

    let region_config = RegionConfig::default();
    let brick_set = bricks(&graph.ts, &region_config);
    println!("\n== bricks (candidate building blocks) ==");
    for brick in &brick_set {
        let names: Vec<&str> = brick.states.iter().map(|s| graph.ts.state_name(s)).collect();
        println!("  {:?}: {{{}}}", brick.kind, names.join(", "));
    }

    let best = find_best_block(&graph, &conflicts, &brick_set, 4)
        .expect("the pulser always has a valid insertion block");
    let partition = best.partition.clone().expect("valid candidates carry a partition");
    println!("\n== chosen block and I-partition ==");
    let show = |label: &str, set: &ts::StateSet| {
        let names: Vec<&str> = set.iter().map(|s| graph.ts.state_name(s)).collect();
        println!("  {label}: {{{}}}", names.join(", "));
    };
    show("block b (x = 1)", &partition.block);
    show("ER(x+)", &partition.er_rise);
    show("ER(x-)", &partition.er_fall);
    show("stable 1 (S1)", &partition.s1);
    show("stable 0 (S0)", &partition.s0);
    println!("  cost: {:?}", best.cost);

    let encoded = insert_state_signal(&graph, "csc0", &partition, InsertionStyle::Concurrent)?;
    println!("\n== after inserting csc0 ==");
    println!(
        "  {} states (was {}), CSC holds: {}",
        encoded.num_states(),
        graph.num_states(),
        encoded.complete_state_coding_holds()
    );
    for s in 0..encoded.num_states() {
        let s = ts::StateId::from(s);
        println!("  {:12}  code {:03b}", encoded.ts.state_name(s), encoded.code(s));
    }
    println!(
        "\nremaining conflicts: {} (the solver iterates until zero)",
        conflict_pairs(&encoded).len()
    );

    // The staged pipeline does exactly the above per iteration, maintaining
    // the conflict list incrementally after each insertion; stepping it
    // manually exposes the per-iteration state.
    println!("\n== the SolverContext pipeline, stepped to completion ==");
    let mut context = SolverContext::new(&sg, &csc::SolverConfig::default());
    while !context.is_solved() {
        let before = context.conflicts().len();
        context.step()?;
        println!(
            "  inserted {:6}  conflicts {} -> {}",
            context.inserted_signals().last().map(String::as_str).unwrap_or("-"),
            before,
            context.conflicts().len()
        );
    }
    let stats = context.stats();
    println!("  stages: {}", stats.stage);
    let solution = context.finish();
    println!("  CSC holds: {}", solution.graph.complete_state_coding_holds());

    // ------------------------------------------------------------------
    // Part 2: the same problem, fully symbolically.  No state graph, no
    // StateSet — conflicts, blocks and the insertion all live on BDDs,
    // and the output is an encoded STG rather than an encoded graph.
    // ------------------------------------------------------------------
    println!("\n== the symbolic solver: no state graph at all ==");
    println!("  symbolic CSC check on the input: conflict = {}", model.symbolic_csc_violation(0));
    let symbolic = solve_stg_symbolic(&model, &csc::SolverConfig::default())?;
    for core in &symbolic.cores {
        let code: String = core.code.iter().rev().map(|&b| if b { '1' } else { '0' }).collect();
        println!("  conflict core found: signal '{}' disagrees at shared code {code}", core.signal);
    }
    println!(
        "  inserted {:?}; symbolic CSC check on the result: conflict = {}",
        symbolic.inserted_signals,
        symbolic.stg.symbolic_csc_violation(0)
    );
    println!("\n== the encoded STG (the designer's hand-back) ==");
    println!("{}", symbolic.stg.to_g());

    // Logic derivation on the encoded STG — reachability, ON/OFF sets and
    // interval-ISOP covers, all on the same BDD engine.
    println!("== next-state logic, derived symbolically ==");
    let analysis = logic::analyze_stg(&symbolic.stg, 0, None)?;
    for function in &analysis.functions.functions {
        println!(
            "  {:6} = {:2} literals in {} cube(s)",
            function.name,
            function.literals(),
            function.cubes()
        );
    }
    println!(
        "  total: {} literals, {} reachable markings",
        analysis.functions.total_literals(),
        analysis.markings
    );

    // ------------------------------------------------------------------
    // Part 3: close the loop to gates.  Covers that depend on their own
    // signal latch (generalized C-elements, split into set/reset against
    // the don't-care space); the rest are combinational complex gates.
    // ------------------------------------------------------------------
    println!("\n== the gate netlist (rsynth --emit eqn) ==");
    let circuit = netlist::synthesize(&symbolic.stg, &analysis.functions)?;
    print!("{}", circuit.to_eqn());
    println!(
        "\n  {} gates ({} generalized C-elements), {} literals",
        circuit.gates.len(),
        circuit.c_elements(),
        circuit.literals()
    );

    // The emitted circuit — not the covers it came from — is rebuilt as a
    // symbolic transition model and checked against the encoded STG's
    // reachable space: every gate excitation must match the STG's
    // (projection-trace equivalence) and no transition may withdraw
    // another gate's excitation (speed independence).
    println!("\n== closed-loop verification (rsynth --verify-netlist) ==");
    let verification =
        netlist::verify(&symbolic.stg, &circuit, 0, &stg::ReachabilityConfig::default())?;
    println!(
        "  {} reachable states: trace-equivalent = {}, speed-independent = {}",
        verification.states_f64, verification.trace_equivalent, verification.speed_independent
    );
    for finding in &verification.diagnostics {
        println!("  !! {finding}");
    }
    assert!(verification.passed(), "the encoded pulser must verify hazard-free");

    println!("\nThe explicit and symbolic paths agree: CSC resolved with one signal,");
    println!("and the emitted netlist provably implements the encoded specification.");
    Ok(())
}
